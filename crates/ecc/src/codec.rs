//! Common codec abstractions shared by all error-control codes in this crate.
//!
//! A [`Codeword`] is a fixed-length bit vector (up to 192 bits) produced by a
//! [`FlitCodec`]. The NoC simulator corrupts codewords by flipping bits (the
//! transient-fault injector in `noc-fault` decides *which* bits) and then asks
//! the codec to decode, observing a [`DecodeStatus`].

use serde::{Deserialize, Serialize};

/// Maximum codeword length supported by [`Codeword`], in bits.
pub const MAX_CODEWORD_BITS: usize = 192;

/// A fixed-length bit vector holding an encoded flit (data + check bits).
///
/// Bit `0` is the least-significant bit of `words[0]`. Bits at or beyond
/// [`Codeword::len`] are always zero.
///
/// # Examples
///
/// ```
/// use noc_ecc::Codeword;
///
/// let mut cw = Codeword::zeroed(10);
/// cw.set_bit(3, true);
/// assert!(cw.bit(3));
/// cw.flip_bit(3);
/// assert!(!cw.bit(3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Codeword {
    words: [u64; 3],
    len: u16,
}

impl Codeword {
    /// Creates an all-zero codeword of `len` bits.
    ///
    /// # Panics
    ///
    /// Panics if `len > MAX_CODEWORD_BITS`.
    pub fn zeroed(len: usize) -> Self {
        assert!(len <= MAX_CODEWORD_BITS, "codeword too long: {len}");
        Codeword { words: [0; 3], len: len as u16 }
    }

    /// Creates a codeword whose low 128 bits are `data` and whose total
    /// length is `len` (any bits above 128 start as zero).
    ///
    /// # Panics
    ///
    /// Panics if `len > MAX_CODEWORD_BITS` or `len < 128` while `data` has
    /// bits set at or above `len`.
    pub fn from_data(data: u128, len: usize) -> Self {
        let mut cw = Self::zeroed(len);
        cw.words[0] = data as u64;
        cw.words[1] = (data >> 64) as u64;
        if len < 128 {
            assert!(data >> len == 0, "data does not fit in {len} bits");
        }
        cw
    }

    /// Length of the codeword in bits.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Returns `true` if the codeword has zero length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < self.len(), "bit index {i} out of range {}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i` to `v`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn set_bit(&mut self, i: usize, v: bool) {
        assert!(i < self.len(), "bit index {i} out of range {}", self.len);
        let mask = 1u64 << (i % 64);
        if v {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Flips bit `i`. This is the fault-injection primitive.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn flip_bit(&mut self, i: usize) {
        assert!(i < self.len(), "bit index {i} out of range {}", self.len);
        self.words[i / 64] ^= 1u64 << (i % 64);
    }

    /// Returns the low 128 bits as the data payload.
    pub fn low128(&self) -> u128 {
        (self.words[0] as u128) | ((self.words[1] as u128) << 64)
    }

    /// Number of set bits in the whole codeword.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Number of bit positions in which `self` and `other` differ.
    pub fn hamming_distance(&self, other: &Codeword) -> u32 {
        self.words.iter().zip(other.words.iter()).map(|(a, b)| (a ^ b).count_ones()).sum()
    }

    /// Iterator over the indices of the set bits.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes { cw: self, word: 0, bits: self.words[0] }
    }
}

/// Iterator over set-bit indices of a [`Codeword`], produced by
/// [`Codeword::iter_ones`].
#[derive(Debug)]
pub struct IterOnes<'a> {
    cw: &'a Codeword,
    word: usize,
    bits: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.bits != 0 {
                let tz = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                return Some(self.word * 64 + tz);
            }
            self.word += 1;
            if self.word >= 3 {
                return None;
            }
            self.bits = self.cw.words[self.word];
        }
    }
}

/// Outcome of decoding a (possibly corrupted) codeword.
///
/// `Corrected` reports how many bit errors the decoder believes it fixed;
/// whether the correction was *actually* right is only known to the caller,
/// who holds the original data (see [`DecodeStatus::is_usable`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DecodeStatus {
    /// Syndrome was zero: no error observed.
    Clean,
    /// The decoder corrected this many bit errors.
    Corrected(u8),
    /// An uncorrectable error was detected; the data must be re-transmitted.
    Detected,
}

impl DecodeStatus {
    /// Returns `true` when the decoder hands data onward (clean or corrected),
    /// `false` when a re-transmission is required.
    pub fn is_usable(self) -> bool {
        !matches!(self, DecodeStatus::Detected)
    }
}

/// A codec that protects one 128-bit flit payload.
///
/// Implemented by [`crate::Crc`] (detection only), [`crate::Secded`]
/// (single-error correction, double-error detection) and [`crate::Dected`]
/// (double-error correction, triple-error detection).
///
/// # Examples
///
/// ```
/// use noc_ecc::{FlitCodec, Secded, DecodeStatus};
///
/// let codec = Secded::flit();
/// let mut cw = codec.encode(0xDEAD_BEEF);
/// cw.flip_bit(7);
/// let (data, status) = codec.decode(&cw);
/// assert_eq!(data, 0xDEAD_BEEF);
/// assert_eq!(status, DecodeStatus::Corrected(1));
/// ```
pub trait FlitCodec {
    /// Number of data bits protected (always 128 for flit codecs here).
    fn data_bits(&self) -> usize;

    /// Number of appended check bits.
    fn check_bits(&self) -> usize;

    /// Total codeword length (`data_bits + check_bits`).
    fn codeword_bits(&self) -> usize {
        self.data_bits() + self.check_bits()
    }

    /// Encodes `data` into a codeword.
    fn encode(&self, data: u128) -> Codeword;

    /// Decodes a codeword, returning the best-effort data and the status.
    ///
    /// When the status is [`DecodeStatus::Detected`], the returned data is
    /// the raw (uncorrected) payload bits and must not be used.
    fn decode(&self, cw: &Codeword) -> (u128, DecodeStatus);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codeword_bit_ops_roundtrip() {
        let mut cw = Codeword::zeroed(145);
        for i in [0usize, 1, 63, 64, 65, 127, 128, 144] {
            assert!(!cw.bit(i));
            cw.set_bit(i, true);
            assert!(cw.bit(i));
        }
        assert_eq!(cw.count_ones(), 8);
        cw.flip_bit(64);
        assert!(!cw.bit(64));
        assert_eq!(cw.count_ones(), 7);
    }

    #[test]
    fn codeword_from_data_preserves_low128() {
        let data = 0x0123_4567_89AB_CDEF_FEDC_BA98_7654_3210u128;
        let cw = Codeword::from_data(data, 145);
        assert_eq!(cw.low128(), data);
    }

    #[test]
    fn iter_ones_matches_bits() {
        let mut cw = Codeword::zeroed(150);
        let positions = [0usize, 5, 63, 64, 100, 128, 149];
        for &p in &positions {
            cw.set_bit(p, true);
        }
        let got: Vec<usize> = cw.iter_ones().collect();
        assert_eq!(got, positions);
    }

    #[test]
    fn hamming_distance_counts_flips() {
        let a = Codeword::from_data(0, 140);
        let mut b = a;
        b.flip_bit(3);
        b.flip_bit(77);
        b.flip_bit(139);
        assert_eq!(a.hamming_distance(&b), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_out_of_range_panics() {
        let cw = Codeword::zeroed(10);
        let _ = cw.bit(10);
    }

    #[test]
    fn decode_status_usability() {
        assert!(DecodeStatus::Clean.is_usable());
        assert!(DecodeStatus::Corrected(2).is_usable());
        assert!(!DecodeStatus::Detected.is_usable());
    }
}
