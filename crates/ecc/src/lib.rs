//! # noc-ecc
//!
//! Error-control coding substrate for the IntelliNoC reproduction
//! (Wang et al., ISCA 2019).
//!
//! The paper's adaptive error-correction hardware (§3.2) switches each router
//! among three coding levels, all implemented here as real codecs operating
//! on flit bits:
//!
//! * [`Crc`] — end-to-end cyclic redundancy check (detection only),
//! * [`Secded`] — per-hop extended Hamming code (corrects 1, detects 2),
//! * [`Dected`] — per-hop shortened BCH t=2 code + parity (corrects 2,
//!   detects 3).
//!
//! [`EccSuite`] bundles the three and dispatches on [`EccScheme`], which is
//! the value the per-router control policy manipulates at run time.
//!
//! # Examples
//!
//! ```
//! use noc_ecc::{EccScheme, EccSuite, DecodeStatus};
//!
//! let suite = EccSuite::new();
//! let mut cw = suite.encode(EccScheme::Dected, 0xFACE);
//! cw.flip_bit(3);
//! cw.flip_bit(140);
//! let (data, status) = suite.decode(EccScheme::Dected, &cw);
//! assert_eq!(data, 0xFACE);
//! assert_eq!(status, DecodeStatus::Corrected(2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bch;
mod bch_generic;
mod codec;
mod crc;
pub mod gf256;
mod hamming;

pub use bch::Dected;
pub use bch_generic::BchCodec;
pub use codec::{Codeword, DecodeStatus, FlitCodec, IterOnes, MAX_CODEWORD_BITS};
pub use crc::{Crc, CrcSpec, CRC16_CCITT, CRC32_MPEG2, CRC8_ATM};
pub use hamming::Secded;

use serde::{Deserialize, Serialize};

/// The error-control scheme a router (or network interface) applies to flits.
///
/// This is the quantity reconfigured by IntelliNoC's adaptive-ECC hardware:
/// fully power-gated (CRC only), partially active (SECDED), or fully active
/// (DECTED). `None` disables protection entirely (used by some baselines'
/// internal hops when CRC is end-to-end).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EccScheme {
    /// No coding on this hop.
    None,
    /// End-to-end CRC-16 (detection only).
    Crc,
    /// Per-hop SECDED (corrects 1-bit, detects 2-bit errors).
    Secded,
    /// Per-hop DECTED (corrects 2-bit, detects 3-bit errors).
    Dected,
    /// Per-hop TECQED: triple-error-correcting BCH (t = 3) — one rung above
    /// the paper's ladder, provided for design-space exploration.
    Tecqed,
}

impl EccScheme {
    /// All schemes in increasing order of strength.
    pub const ALL: [EccScheme; 5] =
        [EccScheme::None, EccScheme::Crc, EccScheme::Secded, EccScheme::Dected, EccScheme::Tecqed];

    /// Number of check bits appended to a 128-bit flit under this scheme.
    pub fn check_bits(self) -> usize {
        match self {
            EccScheme::None => 0,
            EccScheme::Crc => 16,
            EccScheme::Secded => 9,
            EccScheme::Dected => 17,
            EccScheme::Tecqed => 24,
        }
    }

    /// Codeword length for a 128-bit flit under this scheme.
    pub fn codeword_bits(self) -> usize {
        128 + self.check_bits()
    }

    /// Maximum number of bit errors this scheme corrects per codeword.
    pub fn corrects(self) -> u8 {
        match self {
            EccScheme::None | EccScheme::Crc => 0,
            EccScheme::Secded => 1,
            EccScheme::Dected => 2,
            EccScheme::Tecqed => 3,
        }
    }

    /// Whether decoding happens at every hop (as opposed to end-to-end).
    pub fn is_per_hop(self) -> bool {
        matches!(self, EccScheme::Secded | EccScheme::Dected | EccScheme::Tecqed)
    }
}

impl std::fmt::Display for EccScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            EccScheme::None => "none",
            EccScheme::Crc => "crc",
            EccScheme::Secded => "secded",
            EccScheme::Dected => "dected",
            EccScheme::Tecqed => "tecqed",
        };
        f.write_str(s)
    }
}

/// A bundle of the three flit codecs, constructed once and shared.
///
/// Construction of [`Dected`] builds GF(2⁸) tables and the generator
/// polynomial, so callers should create one `EccSuite` per simulation rather
/// than per flit.
#[derive(Debug, Clone)]
pub struct EccSuite {
    crc: Crc,
    secded: Secded,
    dected: Dected,
    tecqed: BchCodec,
}

impl Default for EccSuite {
    fn default() -> Self {
        Self::new()
    }
}

impl EccSuite {
    /// Builds all three codecs.
    pub fn new() -> Self {
        EccSuite {
            crc: Crc::flit(),
            secded: Secded::flit(),
            dected: Dected::flit(),
            tecqed: BchCodec::new(128, 3),
        }
    }

    /// Encodes `data` under `scheme`.
    ///
    /// For [`EccScheme::None`] the codeword is the bare 128 data bits.
    pub fn encode(&self, scheme: EccScheme, data: u128) -> Codeword {
        match scheme {
            EccScheme::None => Codeword::from_data(data, 128),
            EccScheme::Crc => self.crc.encode(data),
            EccScheme::Secded => self.secded.encode(data),
            EccScheme::Dected => self.dected.encode(data),
            EccScheme::Tecqed => self.tecqed.encode(data),
        }
    }

    /// Decodes a codeword previously produced under `scheme`.
    pub fn decode(&self, scheme: EccScheme, cw: &Codeword) -> (u128, DecodeStatus) {
        match scheme {
            EccScheme::None => (cw.low128(), DecodeStatus::Clean),
            EccScheme::Crc => self.crc.decode(cw),
            EccScheme::Secded => self.secded.decode(cw),
            EccScheme::Dected => self.dected.decode(cw),
            EccScheme::Tecqed => self.tecqed.decode(cw),
        }
    }

    /// Access to the CRC codec.
    pub fn crc(&self) -> &Crc {
        &self.crc
    }

    /// Access to the SECDED codec.
    pub fn secded(&self) -> &Secded {
        &self.secded
    }

    /// Access to the DECTED codec.
    pub fn dected(&self) -> &Dected {
        &self.dected
    }

    /// Access to the TECQED codec.
    pub fn tecqed(&self) -> &BchCodec {
        &self.tecqed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_geometry_is_consistent_with_codecs() {
        let suite = EccSuite::new();
        for scheme in EccScheme::ALL {
            let cw = suite.encode(scheme, 0x1234);
            assert_eq!(cw.len(), scheme.codeword_bits(), "{scheme}");
        }
    }

    #[test]
    fn dispatch_roundtrips() {
        let suite = EccSuite::new();
        let data = 0xFEED_FACE_DEAD_BEEFu128;
        for scheme in EccScheme::ALL {
            let cw = suite.encode(scheme, data);
            let (out, status) = suite.decode(scheme, &cw);
            assert_eq!(out, data, "{scheme}");
            assert_eq!(status, DecodeStatus::Clean, "{scheme}");
        }
    }

    #[test]
    fn correction_strengths() {
        assert_eq!(EccScheme::None.corrects(), 0);
        assert_eq!(EccScheme::Crc.corrects(), 0);
        assert_eq!(EccScheme::Secded.corrects(), 1);
        assert_eq!(EccScheme::Dected.corrects(), 2);
        assert_eq!(EccScheme::Tecqed.corrects(), 3);
        assert!(!EccScheme::Crc.is_per_hop());
        assert!(EccScheme::Dected.is_per_hop());
        assert!(EccScheme::Tecqed.is_per_hop());
    }

    #[test]
    fn display_names() {
        let names: Vec<String> = EccScheme::ALL.iter().map(|s| s.to_string()).collect();
        assert_eq!(names, ["none", "crc", "secded", "dected", "tecqed"]);
    }
}
