//! Property-based tests for the error-control codecs.

use noc_ecc::{Crc, DecodeStatus, Dected, EccScheme, EccSuite, FlitCodec, Secded};
use proptest::prelude::*;

fn arb_data() -> impl Strategy<Value = u128> {
    any::<u128>()
}

proptest! {
    /// SECDED corrects any single-bit error anywhere in the codeword.
    #[test]
    fn secded_corrects_any_single_error(data in arb_data(), pos in 0usize..137) {
        let c = Secded::flit();
        let mut cw = c.encode(data);
        cw.flip_bit(pos);
        let (out, status) = c.decode(&cw);
        prop_assert_eq!(status, DecodeStatus::Corrected(1));
        prop_assert_eq!(out, data);
    }

    /// SECDED detects (never miscorrects) any double-bit error.
    #[test]
    fn secded_detects_any_double_error(
        data in arb_data(),
        a in 0usize..137,
        b in 0usize..137,
    ) {
        prop_assume!(a != b);
        let c = Secded::flit();
        let mut cw = c.encode(data);
        cw.flip_bit(a);
        cw.flip_bit(b);
        let (_, status) = c.decode(&cw);
        prop_assert_eq!(status, DecodeStatus::Detected);
    }

    /// DECTED corrects any double-bit error anywhere in the codeword.
    #[test]
    fn dected_corrects_any_double_error(
        data in arb_data(),
        a in 0usize..145,
        b in 0usize..145,
    ) {
        prop_assume!(a != b);
        let c = Dected::flit();
        let mut cw = c.encode(data);
        cw.flip_bit(a);
        cw.flip_bit(b);
        let (out, status) = c.decode(&cw);
        prop_assert_eq!(status, DecodeStatus::Corrected(2));
        prop_assert_eq!(out, data);
    }

    /// DECTED detects any triple-bit error (the DECTED guarantee).
    #[test]
    fn dected_detects_any_triple_error(
        data in arb_data(),
        a in 0usize..145,
        b in 0usize..145,
        c_pos in 0usize..145,
    ) {
        prop_assume!(a != b && b != c_pos && a != c_pos);
        let c = Dected::flit();
        let mut cw = c.encode(data);
        cw.flip_bit(a);
        cw.flip_bit(b);
        cw.flip_bit(c_pos);
        let (_, status) = c.decode(&cw);
        prop_assert_eq!(status, DecodeStatus::Detected);
    }

    /// CRC detects every 1- and 2-bit error (d_min of CRC-16-CCITT over short
    /// blocks is >= 4).
    #[test]
    fn crc_detects_small_errors(data in arb_data(), a in 0usize..144, b in 0usize..144) {
        let c = Crc::flit();
        let mut cw = c.encode(data);
        cw.flip_bit(a);
        if b != a {
            cw.flip_bit(b);
        }
        let (_, status) = c.decode(&cw);
        prop_assert_eq!(status, DecodeStatus::Detected);
    }

    /// Encoding is deterministic and the suite dispatch matches the codecs.
    #[test]
    fn suite_matches_individual_codecs(data in arb_data()) {
        let suite = EccSuite::new();
        prop_assert_eq!(suite.encode(EccScheme::Crc, data), Crc::flit().encode(data));
        prop_assert_eq!(suite.encode(EccScheme::Secded, data), Secded::flit().encode(data));
        prop_assert_eq!(suite.encode(EccScheme::Dected, data), Dected::flit().encode(data));
    }

    /// Any two distinct SECDED codewords differ in at least 4 bits
    /// (extended Hamming has minimum distance 4). Sampled pairs.
    #[test]
    fn secded_minimum_distance(a in arb_data(), b in arb_data()) {
        prop_assume!(a != b);
        let c = Secded::flit();
        let d = c.encode(a).hamming_distance(&c.encode(b));
        prop_assert!(d >= 4, "distance {} too small", d);
    }

    /// Any two distinct DECTED codewords differ in at least 6 bits
    /// (BCH t=2 has d>=5; the parity bit raises it to 6). Sampled pairs.
    #[test]
    fn dected_minimum_distance(a in arb_data(), b in arb_data()) {
        prop_assume!(a != b);
        let c = Dected::flit();
        let d = c.encode(a).hamming_distance(&c.encode(b));
        prop_assert!(d >= 6, "distance {} too small", d);
    }
}
