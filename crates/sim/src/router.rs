//! Router micro-architecture: VC input buffers, pipeline timing, gating
//! state, and per-epoch/per-step accounting.
//!
//! The router is input-buffered with atomic VC allocation (a VC holds one
//! packet from head arrival until tail departure). Pipeline depth is modeled
//! by stamping each buffered flit with the cycle at which it becomes
//! eligible for switch allocation: `pipeline_latency` cycles for a head flit
//! (RC → VA → SA → ST) and one cycle for body flits, which stream behind
//! their head at one per cycle.

use crate::config::RouterDirective;
use crate::flit::{Cycle, Flit};
use crate::topology::{Port, PORTS};
use noc_ecc::EccScheme;
use noc_power::ActivityCounters;
use std::collections::VecDeque;

/// One virtual channel of an input port.
#[derive(Debug, Clone)]
pub struct InputVc {
    queue: VecDeque<(Flit, Cycle)>,
    depth: usize,
    /// Packet currently holding this VC (atomic VC allocation).
    packet: Option<u64>,
    /// Packet that has reserved this VC from the upstream router's VA stage
    /// but whose head flit has not yet arrived.
    reserved_by: Option<u64>,
    /// Output port of the current packet (set by route computation).
    route: Port,
    /// Downstream input VC allocated to the current packet by this router's
    /// VA stage (consulted by body flits at switch allocation).
    out_vc: u8,
}

impl InputVc {
    fn new(depth: usize) -> Self {
        InputVc {
            queue: VecDeque::new(),
            depth,
            packet: None,
            reserved_by: None,
            route: Port::Local,
            out_vc: crate::flit::NO_VC,
        }
    }

    /// Whether a new packet's head flit may claim this VC (not bound, not
    /// reserved, empty).
    pub fn available(&self) -> bool {
        self.packet.is_none() && self.reserved_by.is_none() && self.queue.is_empty()
    }

    /// Whether this VC is reserved for `packet`.
    pub fn is_reserved_for(&self, packet: u64) -> bool {
        self.reserved_by == Some(packet)
    }

    /// The reserving packet, if any (debugging aid).
    #[doc(hidden)]
    pub fn reserved_by_debug(&self) -> Option<u64> {
        self.reserved_by
    }

    /// Whether this VC is idle (no binding, no reservation, no flits) —
    /// the per-VC condition for power-gating the router.
    pub fn is_idle(&self) -> bool {
        self.available()
    }

    /// Reserves this VC for an in-flight head flit (upstream VA).
    ///
    /// # Panics
    ///
    /// Panics if the VC is not available.
    pub fn reserve(&mut self, packet: u64) {
        assert!(self.available(), "reserving a busy VC");
        self.reserved_by = Some(packet);
    }

    /// Downstream VC allocated to the current packet.
    pub fn out_vc(&self) -> u8 {
        self.out_vc
    }

    /// Records the downstream VC allocated to the current packet.
    pub fn set_out_vc(&mut self, vc: u8) {
        self.out_vc = vc;
    }

    /// Whether the VC has a free buffer slot.
    pub fn has_space(&self) -> bool {
        self.queue.len() < self.depth
    }

    /// Current occupancy in flits.
    pub fn occupancy(&self) -> usize {
        self.queue.len()
    }

    /// The packet bound to this VC, if any.
    pub fn packet(&self) -> Option<u64> {
        self.packet
    }

    /// Output port of the bound packet.
    pub fn route(&self) -> Port {
        self.route
    }

    /// Head flit if it is eligible for switch allocation at `now`.
    pub fn sa_candidate(&self, now: Cycle) -> Option<&Flit> {
        match self.queue.front() {
            Some((flit, ready)) if *ready <= now => Some(flit),
            _ => None,
        }
    }

    /// Iterates the queued flits in order (purge/diagnostic support).
    pub fn flits(&self) -> impl Iterator<Item = &Flit> {
        self.queue.iter().map(|(f, _)| f)
    }

    /// Removes every trace of `packet` from this VC: queued flits, the
    /// binding, and any reservation. Returns the number of flits removed.
    /// Used by hard-fault salvage/drop handling.
    pub fn purge_packet(&mut self, packet: u64) -> usize {
        let mut removed = 0;
        if self.packet == Some(packet) {
            removed = self.queue.len();
            self.queue.clear();
            self.packet = None;
            self.out_vc = crate::flit::NO_VC;
            self.route = Port::Local;
        }
        if self.reserved_by == Some(packet) {
            self.reserved_by = None;
        }
        removed
    }

    /// Rebinds the output route of the bound packet after a health-map
    /// rebuild. Only legal while the head flit is still queued (body flits
    /// must follow the path their head already took).
    pub fn rebind_route(&mut self, route: Port) {
        debug_assert!(self.packet.is_some(), "rebind on unbound VC");
        self.route = route;
    }

    /// Removes the head flit after a switch-allocation grant.
    ///
    /// # Panics
    ///
    /// Panics if there is no eligible head flit.
    pub fn pop_granted(&mut self, now: Cycle) -> Flit {
        match self.queue.front() {
            Some((_, ready)) if *ready <= now => {
                let (flit, _) = self.queue.pop_front().expect("head exists");
                if flit.is_tail() {
                    self.packet = None;
                }
                flit
            }
            _ => panic!("no granted flit to pop"),
        }
    }
}

/// One input port: a set of VCs.
#[derive(Debug, Clone)]
pub struct InputPort {
    vcs: Vec<InputVc>,
}

impl InputPort {
    fn new(vcs: usize, depth: usize) -> Self {
        InputPort { vcs: (0..vcs).map(|_| InputVc::new(depth)).collect() }
    }

    /// The VCs of this port.
    pub fn vcs(&self) -> &[InputVc] {
        &self.vcs
    }

    /// Mutable access to one VC.
    ///
    /// # Panics
    ///
    /// Panics if `vc` is out of range.
    pub fn vc_mut(&mut self, vc: usize) -> &mut InputVc {
        &mut self.vcs[vc]
    }

    /// Total flits buffered on this port.
    pub fn occupancy(&self) -> usize {
        self.vcs.iter().map(InputVc::occupancy).sum()
    }

    /// Whether the given flit can be accepted right now: a head flit needs a
    /// free VC; a body/tail flit needs its packet's VC to have space.
    /// Returns the VC index it would enter.
    pub fn accept_target(&self, flit: &Flit) -> Option<usize> {
        if flit.is_head() {
            self.vcs.iter().position(InputVc::available)
        } else {
            self.vcs.iter().position(|vc| vc.packet() == Some(flit.packet_id) && vc.has_space())
        }
    }

    /// Enqueues `flit` into `vc` with SA eligibility at `ready`.
    ///
    /// For head flits, binds the VC to the packet with output `route`.
    ///
    /// # Panics
    ///
    /// Panics if the VC has no space or (for heads) is not available.
    pub fn enqueue(&mut self, vc: usize, flit: Flit, route: Port, ready: Cycle) {
        let slot = &mut self.vcs[vc];
        assert!(slot.has_space(), "VC overflow");
        if flit.is_head() {
            assert!(
                slot.available() || slot.is_reserved_for(flit.packet_id),
                "VC not available for new packet"
            );
            slot.reserved_by = None;
            slot.packet = Some(flit.packet_id);
            slot.route = route;
            slot.out_vc = crate::flit::NO_VC;
        } else {
            assert_eq!(slot.packet, Some(flit.packet_id), "body flit on wrong VC");
        }
        slot.queue.push_back((flit, ready));
    }
}

/// Power-gating state of a router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateState {
    /// Fully powered.
    On,
    /// Power-gated; bypass (if enabled) carries traffic.
    Gated,
    /// Waking up; becomes `On` at the stored cycle. Bypass still works.
    Waking(Cycle),
}

/// Per-time-step statistics accumulated for control-policy observations.
#[derive(Debug, Clone, Default)]
pub struct StepStats {
    /// Flits received per input port.
    pub in_flits: [u64; PORTS],
    /// Flits sent per output port.
    pub out_flits: [u64; PORTS],
    /// Sum over cycles of buffered flits (for buffer utilization).
    pub occupancy_sum: u64,
    /// Cycles observed.
    pub cycles: u64,
    /// Cycles spent gated.
    pub gated_cycles: u64,
    /// Histogram of per-traversal flip counts on outgoing links:
    /// `[0 flips, 1, 2, ≥3]`.
    pub error_hist: [u64; 4],
    /// Per-hop re-transmissions triggered on outgoing links.
    pub retransmissions: u64,
    /// Sum of end-to-end latencies of packets ejected at this router.
    pub ejected_latency_sum: u64,
    /// Packets ejected at this router.
    pub ejected_packets: u64,
    /// Sum over epochs of router power (mW) for averaging.
    pub power_mw_sum: f64,
    /// Epochs observed.
    pub epochs: u64,
}

/// One router instance.
#[derive(Debug, Clone)]
pub struct Router {
    /// Node index.
    pub id: usize,
    inputs: Vec<InputPort>,
    /// Gating state.
    pub gate: GateState,
    /// Pending proactive gate request (waiting for buffers to drain).
    pub gate_pending: bool,
    /// Consecutive idle cycles (for reactive gating).
    pub idle_cycles: u32,
    /// Active control directive.
    pub directive: RouterDirective,
    /// Round-robin pointer for switch allocation.
    pub sa_rr: usize,
    /// Round-robin pointer for the bypass switch.
    pub bypass_rr: usize,
    /// Per-epoch activity counters (drained by the power/thermal epoch).
    pub counters: ActivityCounters,
    /// Per-time-step statistics (drained by the control policy).
    pub step: StepStats,
}

impl Router {
    /// Creates a powered-on router with empty buffers.
    pub fn new(id: usize, vcs: usize, depth: usize, scheme: EccScheme) -> Self {
        Router {
            id,
            inputs: (0..PORTS).map(|_| InputPort::new(vcs, depth)).collect(),
            gate: GateState::On,
            gate_pending: false,
            idle_cycles: 0,
            directive: RouterDirective::fixed(scheme),
            sa_rr: 0,
            bypass_rr: 0,
            counters: ActivityCounters::new(),
            step: StepStats::default(),
        }
    }

    /// The input ports.
    pub fn inputs(&self) -> &[InputPort] {
        &self.inputs
    }

    /// Mutable access to one input port.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn input_mut(&mut self, port: usize) -> &mut InputPort {
        &mut self.inputs[port]
    }

    /// Total flits buffered across all ports.
    pub fn occupancy(&self) -> usize {
        self.inputs.iter().map(InputPort::occupancy).sum()
    }

    /// Whether all input buffers are empty.
    pub fn is_drained(&self) -> bool {
        self.occupancy() == 0
    }

    /// Whether every VC is idle (no flits, bindings, or reservations) —
    /// the safe condition for power-gating.
    pub fn is_gateable(&self) -> bool {
        self.inputs.iter().all(|p| p.vcs().iter().all(InputVc::is_idle))
    }

    /// Whether the router core is currently powered (not gated/waking).
    pub fn is_on(&self) -> bool {
        matches!(self.gate, GateState::On)
    }

    /// Whether the router is gated or still waking (bypass territory).
    pub fn is_gated_or_waking(&self) -> bool {
        !self.is_on()
    }

    /// Removes every trace of `packet` from all input VCs (hard-fault
    /// salvage/drop support). Returns the number of flits removed.
    pub fn purge_packet(&mut self, packet: u64) -> usize {
        self.inputs
            .iter_mut()
            .flat_map(|p| p.vcs.iter_mut())
            .map(|vc| vc.purge_packet(packet))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::make_packet;

    fn router() -> Router {
        Router::new(0, 2, 2, EccScheme::Secded)
    }

    #[test]
    fn head_claims_available_vc() {
        let mut r = router();
        let flits = make_packet(1, 0, 0, 5, 0);
        let port = r.input_mut(0);
        let vc = port.accept_target(&flits[0]).unwrap();
        port.enqueue(vc, flits[0], Port::XPlus, 4);
        assert_eq!(port.vcs()[vc].packet(), Some(1));
        assert_eq!(port.vcs()[vc].route(), Port::XPlus);
        assert!(!port.vcs()[vc].available());
    }

    #[test]
    fn body_follows_heads_vc() {
        let mut r = router();
        let flits = make_packet(1, 0, 0, 5, 0);
        let port = r.input_mut(0);
        port.enqueue(0, flits[0], Port::XPlus, 4);
        assert_eq!(port.accept_target(&flits[1]), Some(0));
        // A different packet's body can't enter.
        let other = make_packet(2, 10, 0, 5, 0);
        assert_eq!(port.accept_target(&other[1]), None);
        // But its head can take the other VC.
        assert_eq!(port.accept_target(&other[0]), Some(1));
    }

    #[test]
    fn vc_depth_backpressures() {
        let mut r = router();
        let flits = make_packet(1, 0, 0, 5, 0);
        let port = r.input_mut(0);
        port.enqueue(0, flits[0], Port::XPlus, 4);
        port.enqueue(0, flits[1], Port::XPlus, 5);
        // Depth 2: third flit refused on this VC.
        assert_eq!(port.accept_target(&flits[2]), None);
    }

    #[test]
    fn sa_eligibility_respects_pipeline_timing() {
        let mut r = router();
        let flits = make_packet(1, 0, 0, 5, 0);
        r.input_mut(0).enqueue(0, flits[0], Port::XPlus, 4);
        let vc = &r.inputs()[0].vcs()[0];
        assert!(vc.sa_candidate(3).is_none());
        assert!(vc.sa_candidate(4).is_some());
    }

    #[test]
    fn tail_departure_frees_vc() {
        let mut r = router();
        let flits = make_packet(1, 0, 0, 5, 0);
        let port = r.input_mut(0);
        port.enqueue(0, flits[0], Port::XPlus, 0);
        let vc = port.vc_mut(0);
        let _ = vc.pop_granted(0);
        assert!(!vc.available(), "packet still bound until tail");
        port.enqueue(0, flits[1], Port::XPlus, 0);
        port.enqueue(0, flits[2], Port::XPlus, 0);
        let vc = port.vc_mut(0);
        let _ = vc.pop_granted(0);
        let _ = vc.pop_granted(0);
        port.enqueue(0, flits[3], Port::XPlus, 0);
        let vc = port.vc_mut(0);
        let tail = vc.pop_granted(0);
        assert!(tail.is_tail());
        assert!(vc.available(), "tail departure frees the VC");
    }

    #[test]
    fn occupancy_tracks_flits() {
        let mut r = router();
        assert!(r.is_drained());
        let flits = make_packet(1, 0, 0, 5, 0);
        r.input_mut(2).enqueue(1, flits[0], Port::Local, 0);
        assert_eq!(r.occupancy(), 1);
        assert!(!r.is_drained());
    }

    #[test]
    fn gate_state_predicates() {
        let mut r = router();
        assert!(r.is_on());
        r.gate = GateState::Gated;
        assert!(r.is_gated_or_waking());
        r.gate = GateState::Waking(10);
        assert!(r.is_gated_or_waking());
        assert!(!r.is_on());
    }
}
