//! Latency distribution tracking.
//!
//! The paper reports average end-to-end latency (Fig. 10); real NoC
//! evaluations also need tail behavior, so the simulator records a
//! log-bucketed histogram of packet latencies and derives percentiles
//! from it.

use serde::{Deserialize, Serialize};

/// Number of histogram buckets (last bucket is open-ended).
const BUCKETS: usize = 64;

/// A log₂-bucketed latency histogram with sub-bucket interpolation.
///
/// Bucket `i` covers latencies in `[edge(i), edge(i+1))` where the edges grow
/// geometrically: 4 buckets per octave starting at 1 cycle. This keeps the
/// histogram O(1) in memory while resolving percentiles to within ~19 %
/// anywhere in the range.
///
/// # Examples
///
/// ```
/// use noc_sim::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// for l in [10, 12, 14, 20, 200] {
///     h.record(l);
/// }
/// assert_eq!(h.count(), 5);
/// assert!(h.percentile(0.5) >= 10.0 && h.percentile(0.5) <= 22.0);
/// assert!(h.percentile(0.99) > 100.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    /// Smallest recorded sample (`u64::MAX` when empty). Percentiles clamp
    /// to `[min_sample, max_sample]` so sparse histograms return observed
    /// latencies instead of bucket edges.
    min_sample: u64,
    /// Largest recorded sample (0 when empty).
    max_sample: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

fn bucket_edge(i: usize) -> f64 {
    // 4 buckets per octave: edge(i) = 2^(i/4).
    (i as f64 / 4.0).exp2()
}

fn bucket_of(latency: u64) -> usize {
    if latency == 0 {
        return 0;
    }
    let idx = (4.0 * (latency as f64).log2()).floor() as usize;
    idx.min(BUCKETS - 1)
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram { counts: vec![0; BUCKETS], total: 0, min_sample: u64::MAX, max_sample: 0 }
    }

    /// Records one packet latency (cycles).
    pub fn record(&mut self, latency: u64) {
        self.counts[bucket_of(latency)] += 1;
        self.total += 1;
        self.min_sample = self.min_sample.min(latency);
        self.max_sample = self.max_sample.max(latency);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Approximate latency (cycles) at quantile `q ∈ [0, 1]`, with linear
    /// interpolation inside the target bucket. Returns 0 when empty.
    ///
    /// The interpolated value is clamped to the observed sample range, so
    /// degenerate distributions answer exactly: the p99 of a single-sample
    /// histogram is that sample, not the upper edge of its log₂ bucket.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn percentile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        if self.total == 0 {
            return 0.0;
        }
        let clamp = |v: f64| v.clamp(self.min_sample as f64, self.max_sample as f64);
        let target = q * self.total as f64;
        let mut seen = 0.0;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = seen + c as f64;
            if next >= target {
                let lo = bucket_edge(i);
                let hi = bucket_edge(i + 1);
                let frac = if c > 0 { ((target - seen) / c as f64).clamp(0.0, 1.0) } else { 0.0 };
                return clamp(lo + (hi - lo) * frac);
            }
            seen = next;
        }
        clamp(bucket_edge(BUCKETS))
    }

    /// Median latency (cycles).
    pub fn median(&self) -> f64 {
        self.percentile(0.5)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.min_sample = self.min_sample.min(other.min_sample);
        self.max_sample = self.max_sample.max(other.max_sample);
    }

    /// Non-empty `(bucket_lower_edge, count)` pairs, for reporting.
    pub fn buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.counts.iter().enumerate().filter(|(_, &c)| c > 0).map(|(i, &c)| (bucket_edge(i), c))
    }

    /// Upper edges of every bucket, in order — the fixed bounds a
    /// Prometheus-style exporter declares once.
    pub fn exposition_bounds() -> Vec<f64> {
        (0..BUCKETS).map(|i| bucket_edge(i + 1)).collect()
    }

    /// Cumulative sample counts at each of [`Self::exposition_bounds`]
    /// (count of samples whose bucket upper edge is ≤ the bound).
    pub fn cumulative_counts(&self) -> Vec<u64> {
        let mut cum = 0;
        self.counts
            .iter()
            .map(|&c| {
                cum += c;
                cum
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.5), 0.0);
        assert_eq!(h.percentile(0.99), 0.0);
    }

    #[test]
    fn single_sample_lands_in_its_bucket() {
        let mut h = LatencyHistogram::new();
        h.record(100);
        let p = h.percentile(0.5);
        assert!((64.0..=128.0).contains(&p), "p50 = {p}");
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut h = LatencyHistogram::new();
        for l in 1..=1000u64 {
            h.record(l);
        }
        let mut last = 0.0;
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let p = h.percentile(q);
            assert!(p >= last, "p({q}) = {p} < {last}");
            last = p;
        }
    }

    #[test]
    fn uniform_distribution_percentiles_are_plausible() {
        let mut h = LatencyHistogram::new();
        for l in 1..=1024u64 {
            h.record(l);
        }
        let p50 = h.percentile(0.5);
        let p90 = h.percentile(0.9);
        // Log-bucketing with 4 buckets/octave resolves to ~19%.
        assert!(p50 > 350.0 && p50 < 700.0, "p50 = {p50}");
        assert!(p90 > 700.0 && p90 < 1100.0, "p90 = {p90}");
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(10);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!(a.percentile(1.0) > 500.0);
        assert!(a.percentile(0.25) < 20.0);
    }

    #[test]
    fn buckets_iterates_nonempty_only() {
        let mut h = LatencyHistogram::new();
        h.record(5);
        h.record(5);
        h.record(600);
        let buckets: Vec<_> = h.buckets().collect();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].1, 2);
        assert_eq!(buckets[1].1, 1);
    }

    #[test]
    fn extreme_latencies_clamp_to_last_bucket() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        assert_eq!(h.count(), 1);
        assert!(h.percentile(0.5).is_finite());
    }

    #[test]
    fn empty_histogram_every_quantile_is_zero() {
        let h = LatencyHistogram::new();
        for q in [0.0, 0.25, 0.5, 0.75, 0.99, 1.0] {
            assert_eq!(h.percentile(q), 0.0, "q = {q}");
        }
    }

    #[test]
    fn quantile_zero_returns_lower_edge_of_first_bucket() {
        let mut h = LatencyHistogram::new();
        h.record(10);
        h.record(500);
        // q = 0 targets mass 0: interpolation fraction clamps to 0, so the
        // result is exactly the lower edge of the first occupied bucket.
        let p0 = h.percentile(0.0);
        assert!(p0 <= 10.0, "p0 = {p0}");
        assert!(p0 > 0.0);
    }

    #[test]
    fn quantile_one_returns_upper_edge_of_last_bucket() {
        let mut h = LatencyHistogram::new();
        h.record(10);
        h.record(500);
        let p100 = h.percentile(1.0);
        // q = 1 lands at the top of the last occupied bucket, never beyond.
        assert!(p100 >= 500.0, "p100 = {p100}");
        assert!(p100 <= 1024.0, "p100 = {p100}");
    }

    #[test]
    fn single_bucket_interpolates_within_its_edges() {
        let mut h = LatencyHistogram::new();
        for _ in 0..100 {
            h.record(100); // all samples in one bucket
        }
        let lo = h.percentile(0.0);
        let mid = h.percentile(0.5);
        let hi = h.percentile(1.0);
        assert!(lo <= mid && mid <= hi);
        // Bucket covering 100 cycles: [2^(26/4), 2^(27/4)) ≈ [90.5, 107.6).
        assert!(lo >= 64.0 && hi <= 128.0, "lo = {lo}, hi = {hi}");
    }

    #[test]
    fn zero_latency_lands_in_first_bucket() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        assert_eq!(h.count(), 1);
        let p = h.percentile(0.5);
        assert!(p >= 0.0 && p <= bucket_edge(1), "p = {p}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn quantile_above_one_panics() {
        LatencyHistogram::new().percentile(1.5);
    }

    #[test]
    fn single_sample_percentiles_return_the_sample_exactly() {
        // Regression pin: every quantile of a one-sample histogram is that
        // sample — not the upper edge of its log₂ bucket (100 lives in
        // [90.5, 107.6), so the old interpolation answered ~107.6 for p99).
        let mut h = LatencyHistogram::new();
        h.record(100);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.percentile(q), 100.0, "q = {q}");
        }
    }

    #[test]
    fn percentiles_never_leave_observed_sample_range() {
        let mut h = LatencyHistogram::new();
        h.record(10);
        h.record(500);
        for q in [0.0, 0.25, 0.5, 0.75, 0.99, 1.0] {
            let p = h.percentile(q);
            assert!((10.0..=500.0).contains(&p), "p({q}) = {p} escaped [10, 500]");
        }
        assert_eq!(h.percentile(0.0), 10.0);
        assert_eq!(h.percentile(1.0), 500.0);
    }

    #[test]
    fn merge_carries_sample_range() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(100);
        b.record(3);
        a.merge(&b);
        assert_eq!(a.percentile(0.0), 3.0);
        assert_eq!(a.percentile(1.0), 100.0);
    }

    #[test]
    fn cumulative_counts_match_bounds() {
        let mut h = LatencyHistogram::new();
        h.record(5);
        h.record(5);
        h.record(600);
        let bounds = LatencyHistogram::exposition_bounds();
        let cum = h.cumulative_counts();
        assert_eq!(bounds.len(), cum.len());
        assert_eq!(*cum.last().unwrap(), 3);
        assert!(cum.windows(2).all(|w| w[0] <= w[1]), "cumulative must be non-decreasing");
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must be strictly increasing");
        // Two samples of 5 sit below the first bound ≥ 5's bucket edge.
        let idx = bounds.iter().position(|&b| b > 5.0).unwrap();
        assert_eq!(cum[idx], 2);
    }
}
