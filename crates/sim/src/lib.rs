//! # noc-sim
//!
//! Cycle-accurate 2D-mesh NoC simulator substrate for the IntelliNoC
//! reproduction (Wang et al., ISCA 2019) — the Booksim2 substitute.
//!
//! The simulator provides the *mechanisms* of the paper's architecture —
//! VC wormhole routers, on-link channel buffers (MFAC storage), power
//! gating with a BST-guided bypass switch, per-hop/end-to-end ECC with
//! ACK/NACK re-transmission, fault injection, thermal and aging feedback —
//! while the *policies* (the five operation modes, the RL controller, and
//! the comparison designs) live in the `intellinoc` crate.
//!
//! # Examples
//!
//! ```
//! use noc_sim::{Network, SimConfig};
//! use noc_traffic::WorkloadSpec;
//!
//! let mut cfg = SimConfig::default();
//! cfg.max_cycles = 100_000;
//! let mut net = Network::new(cfg, WorkloadSpec::uniform(0.01, 5), 42);
//! let report = net.run_to_completion(1_000, |_obs, _cycle| None);
//! assert_eq!(report.stats.packets_delivered, 64 * 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attribution;
mod channel;
mod config;
mod flit;
mod health;
mod journey;
mod latency;
mod metrics_export;
mod network;
mod router;
mod stats;
pub mod topology;

pub use channel::Channel;
pub use config::{RouterDirective, SimConfig};
pub use flit::{make_packet, Cycle, Flit, FlitKind, FLITS_PER_PACKET, NO_VC};
pub use health::HealthRouter;
pub use latency::LatencyHistogram;
pub use metrics_export::{
    declare_network_metrics, declare_runtime_metrics, declare_txn_metrics, export_network_metrics,
    export_runtime_metrics, NETWORK_METRICS, RUNTIME_METRICS, TXN_METRICS,
};
pub use network::Network;
pub use router::{GateState, InputPort, InputVc, Router, StepStats};
pub use stats::{NetworkStats, RouterObservation, RunReport, StallReport, TxnSummary};
pub use topology::{Mesh, Port, DIRS, PORTS};

// Hard-fault scenario types, re-exported for configuration convenience.
pub use noc_fault::{HardFault, HardFaultKind, HardFaultScenario, HardFaultTarget};

// Telemetry surface, re-exported so simulator users can install tracers and
// profilers without depending on `noc-telemetry` directly.
pub use noc_telemetry::{
    bundle_file_name, export_alert_metrics, export_prof_metrics, journey_file_name,
    journey_sampled, link_stats_csv, parse_bundle, parse_exposition, parse_rules, percentile,
    render_exposition, render_report, runner_events_jsonl, shared_recorder, AlertCmp, AlertEdge,
    AlertEngine, AlertEvent, AlertRule, AttributionArtifacts, BundleCause, BundleHead,
    ConvergenceSample, DecisionLog, DecisionRecord, Event, EventKind, FlightRecorder, GateEdge,
    HeatGrid, HopSpan, HttpHandler, HttpRequest, HttpResponse, HttpServer, JourneyCause,
    JourneyLoc, JourneyLog, LatencyBreakdown, LatencyComponents, LinkStat, MetricsHub,
    MetricsRegistry, MetricsServer, PacketJourney, PacketLatency, PairBreakdown, ParsedBundle,
    PhaseCounters, Profiler, RecorderCounters, RetxScope, RunRow, RunTimeline, RunnerEvent, Sample,
    SectionStats, SharedRecorder, SpanStats, SpanTree, TailContribution, TimelineSample,
    TraceFilter, Tracer, TxnJourney, TxnLeg, TxnLegKind, TxnOutcome, BLACKBOX_FORMAT_VERSION,
    DEFAULT_BLACKBOX_CAPACITY, DEFAULT_TRACE_CAPACITY, JOURNEY_FORMAT_VERSION, MAX_SPAN_DEPTH,
};
