//! Run-level statistics, control-policy observations, and final reports.

use crate::latency::LatencyHistogram;
use noc_power::PowerReport;
use serde::{Deserialize, Serialize};

/// Aggregate statistics of a simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NetworkStats {
    /// Packets injected by the workload (first transmissions only).
    pub packets_injected: u64,
    /// Packets delivered (final, successful deliveries).
    pub packets_delivered: u64,
    /// Sum of end-to-end packet latencies (cycles).
    pub latency_sum: u64,
    /// Maximum end-to-end packet latency.
    pub latency_max: u64,
    /// Flits re-transmitted, per-hop NACKs and end-to-end retries combined
    /// (Fig. 15 metric).
    pub retransmitted_flits: u64,
    /// Per-hop re-transmission events (subset of the above).
    pub hop_retx_events: u64,
    /// End-to-end packet retries.
    pub e2e_retx_packets: u64,
    /// Bit errors corrected by per-hop ECC.
    pub corrected_bits: u64,
    /// Traversals with at least one injected bit flip.
    pub faulty_traversals: u64,
    /// Packets delivered with undetected corruption (silent data corruption).
    pub corrupted_packets: u64,
    /// Packets dropped after exhausting the retransmission escalation
    /// ladder or losing their route to a hard fault (accounted loss).
    pub packets_dropped: u64,
    /// Hops where fault-aware routing chose a non-XY port to detour around
    /// a hard fault (head flits only).
    pub reroutes: u64,
    /// Cycle of the last packet delivery (execution time).
    pub last_delivery: u64,
    /// Total cycles simulated.
    pub cycles: u64,
    /// Sum over routers of cycles spent power-gated.
    pub gated_router_cycles: u64,
    /// Latency distribution of delivered packets.
    pub latency_hist: LatencyHistogram,
}

impl NetworkStats {
    /// Average end-to-end packet latency in cycles.
    pub fn avg_latency(&self) -> f64 {
        if self.packets_delivered == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.packets_delivered as f64
        }
    }

    /// Latency (cycles) at quantile `q` (e.g. 0.99 for the p99 tail).
    pub fn latency_percentile(&self, q: f64) -> f64 {
        self.latency_hist.percentile(q)
    }

    /// Fraction of injected packets delivered.
    pub fn delivery_ratio(&self) -> f64 {
        if self.packets_injected == 0 {
            1.0
        } else {
            self.packets_delivered as f64 / self.packets_injected as f64
        }
    }

    /// Fraction of injected packets dropped (accounted loss).
    pub fn drop_ratio(&self) -> f64 {
        if self.packets_injected == 0 {
            0.0
        } else {
            self.packets_dropped as f64 / self.packets_injected as f64
        }
    }
}

/// Transaction-layer summary of a closed-loop (request–reply) run: the
/// conservation auditor's view, aggregated across nodes. `violations` is
/// the summed per-node conservation error `|issued − (completed + failed +
/// shed + in_flight)|`, and `orphans` names every transaction id that
/// vanished without terminal accounting.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TxnSummary {
    /// Transactions issued (shed candidates included).
    pub issued: u64,
    /// Transactions whose full reply was delivered.
    pub completed: u64,
    /// Transactions that exhausted their retry budget.
    pub failed: u64,
    /// Transactions shed by admission control before injection.
    pub shed: u64,
    /// Transactions still open at the end of the simulated interval.
    pub in_flight: u64,
    /// Attempt timeouts (several per transaction when it retries).
    pub timeouts: u64,
    /// Retry attempts issued.
    pub retries: u64,
    /// Median transaction completion time (first issue → reply delivered,
    /// cycles; 0 when nothing completed). Nearest-rank percentile.
    pub p50_completion: u64,
    /// 99th-percentile transaction completion time (cycles; 0 when nothing
    /// completed). Nearest-rank percentile — the closed-loop tail the
    /// journey tail report explains.
    pub p99_completion: u64,
    /// Summed per-node conservation error; zero iff the invariant holds.
    pub violations: u64,
    /// Transaction ids missing from the transaction table.
    pub orphans: Vec<u64>,
}

/// Structured diagnostic produced by the stall watchdog when the network
/// makes zero forward progress (no deliveries, no drops) over a full
/// watchdog window while packets are in flight.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StallReport {
    /// Cycle the watchdog fired.
    pub cycle: u64,
    /// Watchdog window length in cycles.
    pub window: u64,
    /// Packets in flight (injected − delivered − dropped) at the stall.
    pub in_flight: u64,
    /// Human-readable descriptions of the first few blocked flits (from
    /// `snapshot_blocked`).
    pub blocked: Vec<String>,
    /// Full network state dump (from `snapshot_dump`).
    pub dump: String,
}

/// Observation of one router over the last control time step — the RL state
/// features (paper Fig. 7) plus the reward ingredients and the error
/// histogram used by the CPD heuristic.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RouterObservation {
    /// Router/node index.
    pub router: usize,
    /// The paper's 16 state features: 5 input-link utilizations, 5 buffer
    /// utilizations, 5 output-link utilizations, temperature (°C).
    pub features: [f64; 16],
    /// Mean end-to-end latency of packets this router's node *sent* that
    /// were delivered during the step (cycles; 0 when none completed).
    pub avg_latency: f64,
    /// Number of this node's packets delivered during the step.
    pub ejected_packets: u64,
    /// Mean router power over the step (mW; ≥ 1 for the reward).
    pub avg_power_mw: f64,
    /// Aging factor per paper Eq. 7 (> 1).
    pub aging_factor: f64,
    /// Router temperature (°C).
    pub temperature_c: f64,
    /// Histogram of per-traversal bit-flip counts on outgoing links:
    /// `[0, 1, 2, ≥3]`.
    pub error_hist: [u64; 4],
    /// Per-hop re-transmissions on outgoing links during the step.
    pub retransmissions: u64,
    /// Fraction of the step spent power-gated.
    pub gated_fraction: f64,
}

/// Final report of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Execution time in cycles (last packet delivery).
    pub exec_cycles: u64,
    /// Aggregate network statistics.
    pub stats: NetworkStats,
    /// Power summary.
    pub power: PowerReport,
    /// Network MTTF in hours (extrapolated), if any router aged.
    pub mttf_hours: Option<f64>,
    /// Mean die temperature at the end of the run (°C).
    pub mean_temp_c: f64,
    /// Peak tile temperature observed at the end of the run (°C).
    pub max_temp_c: f64,
    /// Mean aging factor across routers (Eq. 7).
    pub mean_aging_factor: f64,
    /// Total bit flips injected by the transient-fault injector (sanity
    /// check against the observed corrected/faulty counters).
    pub injected_bit_flips: u64,
    /// Link traversals on which the injector flipped at least one bit.
    pub faulty_flit_traversals: u64,
    /// Stall-watchdog diagnostic, set when the run was aborted for lack of
    /// forward progress.
    pub stall: Option<StallReport>,
    /// Transaction-layer summary, set only for closed-loop workloads.
    pub txn: Option<TxnSummary>,
}

impl RunReport {
    /// Energy-efficiency per the paper's Eq. 8 (1/pJ).
    pub fn energy_efficiency(&self) -> f64 {
        self.power.energy_efficiency()
    }

    /// Energy–delay product (pJ·ns).
    pub fn edp(&self) -> f64 {
        self.power.edp()
    }

    /// Average packet latency in cycles.
    pub fn avg_latency(&self) -> f64 {
        self.stats.avg_latency()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_latency_handles_empty() {
        let s = NetworkStats::default();
        assert_eq!(s.avg_latency(), 0.0);
        assert_eq!(s.delivery_ratio(), 1.0);
    }

    #[test]
    fn avg_latency_divides() {
        let s = NetworkStats {
            packets_delivered: 4,
            latency_sum: 100,
            packets_injected: 5,
            ..NetworkStats::default()
        };
        assert_eq!(s.avg_latency(), 25.0);
        assert_eq!(s.delivery_ratio(), 0.8);
    }

    #[test]
    fn avg_latency_stays_finite_near_u64_max() {
        let s =
            NetworkStats { packets_delivered: 1, latency_sum: u64::MAX, ..NetworkStats::default() };
        let avg = s.avg_latency();
        assert!(avg.is_finite());
        // f64 can't represent u64::MAX exactly; it must stay in the ballpark.
        assert!(avg > 1.8e19 && avg < 1.9e19, "avg = {avg}");
    }

    #[test]
    fn avg_latency_tiny_ratio_does_not_round_to_zero() {
        let s =
            NetworkStats { packets_delivered: u64::MAX, latency_sum: 1, ..NetworkStats::default() };
        let avg = s.avg_latency();
        assert!(avg > 0.0 && avg < 1e-18, "avg = {avg}");
    }

    #[test]
    fn delivery_ratio_extremes_stay_in_unit_interval() {
        let all = NetworkStats {
            packets_injected: u64::MAX,
            packets_delivered: u64::MAX,
            ..NetworkStats::default()
        };
        assert_eq!(all.delivery_ratio(), 1.0);

        let none = NetworkStats { packets_injected: u64::MAX, ..NetworkStats::default() };
        assert_eq!(none.delivery_ratio(), 0.0);

        let one = NetworkStats {
            packets_injected: u64::MAX,
            packets_delivered: 1,
            ..NetworkStats::default()
        };
        let r = one.delivery_ratio();
        assert!(r > 0.0 && r < 1e-18, "ratio = {r}");
    }

    #[test]
    fn delivery_ratio_in_flight_packets_bound_it_below_one() {
        // Injected-but-undelivered packets (still in flight at run end) pull
        // the ratio below 1 without any loss having occurred.
        let s = NetworkStats {
            packets_injected: 1000,
            packets_delivered: 993,
            ..NetworkStats::default()
        };
        let r = s.delivery_ratio();
        assert!(r > 0.99 && r < 1.0, "ratio = {r}");
    }

    #[test]
    fn latency_percentile_delegates_to_histogram() {
        let mut s = NetworkStats::default();
        s.latency_hist.record(10);
        s.latency_hist.record(1000);
        assert!(s.latency_percentile(0.0) <= 10.0);
        assert!(s.latency_percentile(1.0) >= 1000.0);
    }
}
