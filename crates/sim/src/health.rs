//! Link/router health map and fault-aware routing.
//!
//! [`HealthRouter`] tracks which links and routers are in service and
//! provides a deadlock-free detour route around dead components. While the
//! mesh is healthy it defers to plain XY dimension-order routing; as soon as
//! any component is down it switches to **up*/down*** routing over the
//! surviving topology:
//!
//! * Nodes are labelled by BFS order from a deterministic root (the
//!   lowest-indexed live router). A link traversal toward a smaller label is
//!   an *up* move, toward a larger label a *down* move.
//! * A legal route is any sequence of up moves followed by down moves —
//!   after the first down move a packet may never go up again. Any cycle of
//!   channels must contain a down→up transition, so the channel dependency
//!   graph is acyclic and the routing is deadlock-free on *any* connected
//!   residual graph (unlike turn models such as west-first or odd-even,
//!   which cannot detour around boundary-column failures).
//! * Routes are exact shortest legal paths (per-destination BFS over
//!   `(node, phase)` states), so every hop strictly decreases the distance
//!   to the destination — routes cannot cycle.
//!
//! The phase bit is never stored in a flit: a flit's last traversed link is
//! known at every routing site from its input port, and the phase is simply
//! whether that traversal was a down move under the current labelling.

use crate::topology::{Mesh, Port, DIRS};

/// Route-table sentinel: destination unreachable from this state.
const UNREACHABLE: u8 = u8::MAX;

/// Health map plus fault-aware route tables for one mesh.
#[derive(Debug, Clone)]
pub struct HealthRouter {
    mesh: Mesh,
    /// Per-directed-link service state, indexed `node * DIRS + dir`.
    link_up: Vec<bool>,
    /// Per-router service state.
    router_up: Vec<bool>,
    /// BFS label per node; `u32::MAX` for dead or disconnected nodes.
    label: Vec<u32>,
    /// `table[dest][node * 2 + phase]` = output-port index, `Port::Local`
    /// index on arrival, or [`UNREACHABLE`].
    table: Vec<u8>,
    /// Whether any component is currently out of service.
    degraded: bool,
}

impl HealthRouter {
    /// A fully healthy mesh.
    pub fn new(mesh: Mesh) -> Self {
        let nodes = mesh.nodes();
        let mut h = HealthRouter {
            mesh,
            link_up: vec![true; nodes * DIRS],
            router_up: vec![true; nodes],
            label: vec![0; nodes],
            table: vec![0; nodes * nodes * 2],
            degraded: false,
        };
        h.rebuild();
        h
    }

    /// Whether any link or router is currently down.
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// Whether router `r` is in service.
    pub fn router_up(&self, r: usize) -> bool {
        self.router_up[r]
    }

    /// Whether the directed link leaving `r` toward `dir` is in service
    /// (false for mesh-boundary non-links).
    pub fn link_up(&self, r: usize, dir: Port) -> bool {
        self.mesh.neighbor(r, dir).is_some() && self.link_up[r * DIRS + dir.index()]
    }

    /// Sets the service state of the *physical* link `(r, dir)` — both
    /// directions fail and recover together. Call [`Self::rebuild`] after a
    /// batch of changes.
    pub fn set_link(&mut self, r: usize, dir: Port, up: bool) {
        if let Some(n) = self.mesh.neighbor(r, dir) {
            self.link_up[r * DIRS + dir.index()] = up;
            self.link_up[n * DIRS + dir.opposite().index()] = up;
        }
    }

    /// Sets the service state of router `r`. Call [`Self::rebuild`] after a
    /// batch of changes.
    pub fn set_router(&mut self, r: usize, up: bool) {
        self.router_up[r] = up;
    }

    /// Whether a usable traversal `r → dir` exists: link up and both
    /// endpoint routers in service.
    pub fn usable(&self, r: usize, dir: Port) -> bool {
        self.router_up[r]
            && self.link_up[r * DIRS + dir.index()]
            && self.mesh.neighbor(r, dir).map(|n| self.router_up[n]).unwrap_or(false)
    }

    /// Recomputes labels and route tables from the current health state.
    pub fn rebuild(&mut self) {
        let nodes = self.mesh.nodes();
        self.degraded = !self.router_up.iter().all(|&u| u)
            || (0..nodes).any(|r| {
                Port::DIRECTIONS.iter().any(|&d| {
                    self.mesh.neighbor(r, d).is_some() && !self.link_up[r * DIRS + d.index()]
                })
            });

        // BFS labelling from the lowest-indexed live router. Disconnected or
        // dead nodes keep label u32::MAX and are unroutable.
        self.label = vec![u32::MAX; nodes];
        let root = match (0..nodes).find(|&r| self.router_up[r]) {
            Some(r) => r,
            None => {
                self.table = vec![UNREACHABLE; nodes * nodes * 2];
                return;
            }
        };
        let mut order = 0u32;
        let mut queue = std::collections::VecDeque::new();
        self.label[root] = order;
        queue.push_back(root);
        while let Some(n) = queue.pop_front() {
            for d in Port::DIRECTIONS {
                if self.usable(n, d) {
                    let m = self.mesh.neighbor(n, d).unwrap();
                    if self.label[m] == u32::MAX {
                        order += 1;
                        self.label[m] = order;
                        queue.push_back(m);
                    }
                }
            }
        }

        self.table = vec![UNREACHABLE; nodes * nodes * 2];
        for dest in 0..nodes {
            if self.label[dest] != u32::MAX {
                self.build_dest_table(dest);
            }
        }
    }

    /// Fills `table[dest]` by backward BFS over `(node, phase)` states.
    /// Phase 0 = up moves still allowed, phase 1 = locked to down moves.
    fn build_dest_table(&mut self, dest: usize) {
        let nodes = self.mesh.nodes();
        let idx = |n: usize, ph: usize| n * 2 + ph;
        let mut dist = vec![u32::MAX; nodes * 2];
        let mut queue = std::collections::VecDeque::new();
        dist[idx(dest, 0)] = 0;
        dist[idx(dest, 1)] = 0;
        queue.push_back(idx(dest, 0));
        queue.push_back(idx(dest, 1));
        while let Some(s) = queue.pop_front() {
            let (m, ph) = (s / 2, s % 2);
            let d = dist[s];
            // Predecessors: states (n, pn) with a legal move n → m entering
            // phase `ph`. A move n → m is *up* iff label[m] < label[n]; an
            // up move requires pn = 0 and lands in phase 0, a down move is
            // legal from either phase and lands in phase 1.
            for dir in Port::DIRECTIONS {
                let n = match self.mesh.neighbor(m, dir) {
                    Some(n) => n,
                    None => continue,
                };
                if !self.usable(n, dir.opposite()) || self.label[n] == u32::MAX {
                    continue;
                }
                let up_move = self.label[m] < self.label[n];
                let preds: &[usize] = if up_move {
                    if ph == 0 {
                        &[0]
                    } else {
                        &[]
                    }
                } else if ph == 1 {
                    &[0, 1]
                } else {
                    &[]
                };
                for &pn in preds {
                    let p = idx(n, pn);
                    if dist[p] == u32::MAX {
                        dist[p] = d + 1;
                        queue.push_back(p);
                    }
                }
            }
        }

        // Port selection: the legal move minimizing the successor distance.
        // Ties prefer the XY port, then fixed port order, for determinism.
        let base = dest * nodes * 2;
        for n in 0..nodes {
            if self.label[n] == u32::MAX {
                continue;
            }
            for ph in 0..2 {
                if n == dest {
                    self.table[base + idx(n, ph)] = Port::Local.index() as u8;
                    continue;
                }
                if dist[idx(n, ph)] == u32::MAX {
                    continue;
                }
                let xy = self.mesh.xy_route(n, dest);
                let mut best: Option<(u32, Port)> = None;
                for dir in Port::DIRECTIONS {
                    if !self.usable(n, dir) {
                        continue;
                    }
                    let m = self.mesh.neighbor(n, dir).unwrap();
                    if self.label[m] == u32::MAX {
                        continue;
                    }
                    let up_move = self.label[m] < self.label[n];
                    if up_move && ph == 1 {
                        continue;
                    }
                    let succ = dist[idx(m, if up_move { 0 } else { 1 })];
                    if succ == u32::MAX {
                        continue;
                    }
                    let better = match best {
                        None => true,
                        Some((bd, bp)) => succ < bd || (succ == bd && dir == xy && bp != xy),
                    };
                    if better {
                        best = Some((succ, dir));
                    }
                }
                if let Some((_, dir)) = best {
                    self.table[base + idx(n, ph)] = dir.index() as u8;
                }
            }
        }
    }

    /// The up*/down* phase of a flit at `here` that arrived through input
    /// port `in_port` (phase 1 = locked to down moves).
    fn phase(&self, here: usize, in_port: Port) -> usize {
        if in_port == Port::Local {
            return 0;
        }
        match self.mesh.neighbor(here, in_port) {
            // The last traversal was upstream → here; it was a down move iff
            // our label is larger than the upstream label.
            Some(u) if self.label[u] != u32::MAX && self.label[here] > self.label[u] => 1,
            _ => 0,
        }
    }

    /// Fault-aware route: the output port for a flit at `here` destined for
    /// `dest` that arrived through `in_port` (`Port::Local` for fresh
    /// injections). Falls back to plain XY while the mesh is healthy;
    /// returns `None` when `dest` is unreachable from the flit's current
    /// up*/down* state.
    pub fn route(&self, here: usize, dest: usize, in_port: Port) -> Option<Port> {
        if !self.degraded {
            return Some(self.mesh.xy_route(here, dest));
        }
        if here == dest {
            return Some(Port::Local);
        }
        let nodes = self.mesh.nodes();
        let ph = self.phase(here, in_port);
        match self.table[dest * nodes * 2 + here * 2 + ph] {
            UNREACHABLE => None,
            p => Some(Port::from_index(p as usize)),
        }
    }

    /// Whether a fresh injection at `src` can reach `dest` at all.
    pub fn reachable(&self, src: usize, dest: usize) -> bool {
        if !self.router_up[src] || !self.router_up[dest] {
            return false;
        }
        if !self.degraded || src == dest {
            return true;
        }
        let nodes = self.mesh.nodes();
        self.table[dest * nodes * 2 + src * 2] != UNREACHABLE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn walk(h: &HealthRouter, mesh: &Mesh, src: usize, dest: usize) -> usize {
        let mut here = src;
        let mut in_port = Port::Local;
        let mut steps = 0;
        loop {
            let p = h.route(here, dest, in_port).expect("route exists");
            if p == Port::Local {
                assert_eq!(here, dest);
                return steps;
            }
            assert!(h.link_up(here, p), "route uses dead link {here}->{p:?}");
            let next = mesh.neighbor(here, p).expect("route fell off mesh");
            assert!(h.router_up(next), "route enters dead router {next}");
            in_port = p.opposite();
            here = next;
            steps += 1;
            assert!(steps <= 4 * mesh.nodes(), "route cycles: {src}->{dest}");
        }
    }

    #[test]
    fn healthy_mesh_routes_are_xy() {
        let mesh = Mesh::new(8, 8);
        let h = HealthRouter::new(mesh);
        assert!(!h.degraded());
        for src in 0..64 {
            for dest in 0..64 {
                assert_eq!(h.route(src, dest, Port::Local), Some(mesh.xy_route(src, dest)));
            }
        }
    }

    #[test]
    fn any_single_link_failure_keeps_all_pairs_connected() {
        let mesh = Mesh::new(8, 8);
        for r in 0..mesh.nodes() {
            for dir in [Port::XPlus, Port::YPlus] {
                if mesh.neighbor(r, dir).is_none() {
                    continue;
                }
                let mut h = HealthRouter::new(mesh);
                h.set_link(r, dir, false);
                h.rebuild();
                assert!(h.degraded());
                for src in 0..mesh.nodes() {
                    for dest in 0..mesh.nodes() {
                        assert!(h.reachable(src, dest), "dead {r}->{dir:?}: {src}->{dest}");
                        walk(&h, &mesh, src, dest);
                    }
                }
            }
        }
    }

    #[test]
    fn boundary_column_detour_works() {
        // The case turn models (west-first, odd-even) cannot handle: a dead
        // vertical link in column 0 forces an east-side detour returning
        // west. Up*/down* routes it.
        let mesh = Mesh::new(8, 8);
        let mut h = HealthRouter::new(mesh);
        h.set_link(mesh.node(0, 1), Port::YPlus, false); // (0,1)-(0,2) dead
        h.rebuild();
        let steps = walk(&h, &mesh, mesh.node(0, 5), mesh.node(0, 0));
        assert!(steps >= 7, "detour must be non-minimal, got {steps}");
    }

    #[test]
    fn dead_router_unreachable_but_others_connected() {
        let mesh = Mesh::new(8, 8);
        let dead = mesh.node(3, 3);
        let mut h = HealthRouter::new(mesh);
        h.set_router(dead, false);
        h.rebuild();
        for src in 0..mesh.nodes() {
            for dest in 0..mesh.nodes() {
                if src == dead || dest == dead {
                    assert!(!h.reachable(src, dest));
                } else {
                    assert!(h.reachable(src, dest));
                    let steps = walk(&h, &mesh, src, dest);
                    let _ = steps;
                }
            }
        }
    }

    #[test]
    fn disconnected_region_reports_unreachable() {
        // 2x2 mesh with both links around node 3 cut: node 3 is isolated.
        let mesh = Mesh::new(2, 2);
        let mut h = HealthRouter::new(mesh);
        h.set_link(1, Port::YPlus, false);
        h.set_link(2, Port::XPlus, false);
        h.rebuild();
        assert!(!h.reachable(0, 3));
        assert!(!h.reachable(3, 0));
        assert_eq!(h.route(0, 3, Port::Local), None);
        assert!(h.reachable(0, 1) && h.reachable(0, 2));
    }

    #[test]
    fn link_setters_are_symmetric() {
        let mesh = Mesh::new(4, 4);
        let mut h = HealthRouter::new(mesh);
        h.set_link(5, Port::XPlus, false);
        h.rebuild();
        assert!(!h.link_up(5, Port::XPlus));
        assert!(!h.link_up(6, Port::XMinus));
        h.set_link(6, Port::XMinus, true);
        h.rebuild();
        assert!(h.link_up(5, Port::XPlus) && !h.degraded());
    }

    #[test]
    fn boundary_links_report_down() {
        let h = HealthRouter::new(Mesh::new(4, 4));
        assert!(!h.link_up(0, Port::XMinus));
        assert!(!h.link_up(0, Port::YMinus));
        assert!(h.link_up(0, Port::XPlus));
    }
}
