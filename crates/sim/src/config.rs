//! Simulation configuration.

use noc_ecc::EccScheme;
use noc_fault::{AgingModel, HardFaultScenario, ThermalModel, VariusModel};
use noc_power::{EnergyModel, LeakageModel};
use serde::{Deserialize, Serialize};

/// Full configuration of one network simulation.
///
/// Passive configuration bag; fields are public by design. Defaults follow
/// the paper's Table 1 (8×8 mesh, 4 VCs, 4-stage routers, 2 GHz / 1.0 V).
///
/// # Examples
///
/// ```
/// use noc_sim::SimConfig;
///
/// let mut cfg = SimConfig::default();
/// cfg.channel_capacity = 8; // iDEAL/MFAC channel buffers
/// cfg.bypass_enabled = true;
/// cfg.validate();
/// assert_eq!(cfg.nodes(), 64);
/// assert_eq!(cfg.channel_stages_per_router(), 32);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Mesh width.
    pub width: usize,
    /// Mesh height.
    pub height: usize,
    /// Virtual channels per input port.
    pub vcs: usize,
    /// Buffer depth (flits) per VC.
    pub vc_depth: usize,
    /// Channel-buffer capacity per inter-router channel (flits stored on the
    /// link itself: MFAC/iDEAL/elastic stages). `0` means a plain wire, which
    /// still pipelines a single in-flight flit.
    pub channel_capacity: usize,
    /// Router pipeline depth in cycles (head flit: RC→VA→SA→ST = 4;
    /// EB removes VA = 3). Body flits follow at one per cycle.
    pub pipeline_latency: u32,
    /// Cycles to wake a power-gated router.
    pub wakeup_latency: u32,
    /// Enables cycle-granular reactive power gating (CP/CPD designs): a
    /// router gates after `idle_gate_threshold` idle cycles.
    pub reactive_gating: bool,
    /// Consecutive idle cycles before a reactive gate.
    pub idle_gate_threshold: u32,
    /// Channel occupancy at which a reactively gated router triggers
    /// wake-up.
    pub wake_occupancy: usize,
    /// Channel occupancy at which a *proactively* (directive-)gated router
    /// wakes. IntelliNoC rides out more pressure than CP because the MFACs
    /// provide storage (paper §3.3).
    pub forced_wake_occupancy: usize,
    /// Consecutive idle cycles before a proactive gate directive engages
    /// (the PG controller never gates a busy router; mode 0 is advisory).
    pub forced_idle_threshold: u32,
    /// Whether flits can bypass a gated router (channel-to-channel
    /// forwarding via the BST-guided bypass switch).
    pub bypass_enabled: bool,
    /// Whether the bypass keeps forwarding while the router is waking up.
    /// True for IntelliNoC (MFAC storage rides out the wake); false for the
    /// simple single-latch bypass of CP/CPD, whose flits stall during the
    /// wake-up (the latency penalty the paper attributes to power gating).
    pub bypass_during_wake: bool,
    /// Whether re-transmission copies are held in MFAC channel stages
    /// (IntelliNoC) rather than in router buffers (baseline SECDED).
    pub mfac_retx: bool,
    /// Attach an end-to-end CRC at the network interface (IntelliNoC/CPD
    /// operation-mode designs).
    pub e2e_crc: bool,
    /// Router has a unified buffer state table on an always-on supply
    /// (IntelliNoC; required for bypass-while-gated routing state).
    pub has_bst: bool,
    /// Router carries an RL Q-table (IntelliNoC).
    pub has_qtable: bool,
    /// Initial / static per-hop ECC scheme.
    pub default_scheme: EccScheme,
    /// Cycles from a NACK to the re-transmitted flit being back on the link.
    pub retx_latency: u32,
    /// Per-hop retransmission budget before escalating to end-to-end
    /// recovery, and the end-to-end generation bound before an accounted
    /// drop. `0` means unbounded (the pre-resilience behaviour).
    pub max_retx: u32,
    /// Stall-watchdog window: with packets in flight and zero completions
    /// or drops for this many cycles, the run aborts with a structured
    /// [`crate::StallReport`]. `0` disables the watchdog.
    pub stall_window: u64,
    /// Consult the link/router health map and detour around dead links with
    /// the odd-even turn model instead of routing strictly XY.
    pub fault_aware_routing: bool,
    /// Deterministic schedule of permanent/intermittent link and router
    /// failures.
    pub hard_faults: HardFaultScenario,
    /// Supply voltage (V).
    pub vdd: f64,
    /// Hard cap on simulated cycles (safety net for drains).
    pub max_cycles: u64,
    /// Thermal/aging/power accounting epoch in cycles.
    pub epoch_cycles: u64,
    /// RNG seed for fault injection.
    pub seed: u64,
    /// Thermal model.
    pub thermal: ThermalModel,
    /// Transient-error model.
    pub varius: VariusModel,
    /// Aging model.
    pub aging: AgingModel,
    /// Dynamic energy model.
    pub energy: EnergyModel,
    /// Leakage model.
    pub leakage: LeakageModel,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            width: 8,
            height: 8,
            vcs: 4,
            vc_depth: 4,
            channel_capacity: 0,
            pipeline_latency: 4,
            wakeup_latency: 8,
            reactive_gating: false,
            idle_gate_threshold: 8,
            wake_occupancy: 2,
            forced_wake_occupancy: 6,
            forced_idle_threshold: 2,
            bypass_enabled: false,
            bypass_during_wake: false,
            mfac_retx: false,
            e2e_crc: false,
            has_bst: false,
            has_qtable: false,
            default_scheme: EccScheme::Secded,
            retx_latency: 4,
            max_retx: 16,
            stall_window: 50_000,
            fault_aware_routing: false,
            hard_faults: HardFaultScenario::default(),
            vdd: 1.0,
            max_cycles: 2_000_000,
            epoch_cycles: 250,
            seed: 1,
            thermal: ThermalModel::default(),
            varius: VariusModel::default(),
            aging: AgingModel::default(),
            energy: EnergyModel::default(),
            leakage: LeakageModel::default(),
        }
    }
}

impl SimConfig {
    /// Number of nodes in the mesh.
    pub fn nodes(&self) -> usize {
        self.width * self.height
    }

    /// Total router-buffer flit slots per router (all ports and VCs).
    pub fn buffer_slots_per_router(&self) -> u32 {
        (crate::topology::PORTS * self.vcs * self.vc_depth) as u32
    }

    /// Channel stages attached to one router's four output channels.
    pub fn channel_stages_per_router(&self) -> u32 {
        (crate::topology::DIRS * self.channel_capacity) as u32
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on an impossible configuration (zero mesh, zero VCs, …).
    pub fn validate(&self) {
        assert!(self.width >= 2 && self.height >= 2, "mesh must be at least 2x2");
        assert!(self.vcs >= 1, "need at least one VC");
        assert!(self.vc_depth >= 1, "VC depth must be nonzero");
        assert!(self.pipeline_latency >= 1, "pipeline must be at least 1 cycle");
        assert!(self.retx_latency >= 1, "retransmission latency must be nonzero");
        assert!(self.epoch_cycles >= 1, "epoch must be nonzero");
        let nodes = self.nodes() as u32;
        for f in &self.hard_faults.faults {
            match f.target {
                noc_fault::HardFaultTarget::Link { router, dir } => {
                    assert!(router < nodes, "hard-fault link router {router} out of range");
                    assert!(dir < 4, "hard-fault link dir {dir} out of range");
                }
                noc_fault::HardFaultTarget::Router { router } => {
                    assert!(router < nodes, "hard-fault router {router} out of range");
                }
            }
        }
    }
}

/// A per-router control directive, applied at time-step boundaries by the
/// control policy (the IntelliNoC operation modes map onto this).
///
/// # Examples
///
/// ```
/// use noc_ecc::EccScheme;
/// use noc_sim::RouterDirective;
///
/// // Mode-2-like directive: per-hop SECDED, gating left to the reactive
/// // controller, normal link timing.
/// let d = RouterDirective { gate: None, scheme: EccScheme::Secded, relaxed: false };
/// assert_eq!(d, RouterDirective::fixed(EccScheme::Secded));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouterDirective {
    /// Force the router gated (`Some(true)`), force it awake
    /// (`Some(false)`), or leave gating to the reactive mechanism (`None`).
    pub gate: Option<bool>,
    /// Per-hop ECC scheme for this router's outgoing links.
    pub scheme: EccScheme,
    /// Relaxed-timing transmission on this router's outgoing links
    /// (doubles link traversal latency, squares the bit-error rate).
    pub relaxed: bool,
}

impl RouterDirective {
    /// The static directive used by non-adaptive designs.
    pub fn fixed(scheme: EccScheme) -> Self {
        RouterDirective { gate: None, scheme, relaxed: false }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        let c = SimConfig::default();
        assert_eq!((c.width, c.height), (8, 8));
        assert_eq!(c.vcs, 4);
        assert_eq!(c.pipeline_latency, 4);
        assert_eq!(c.vdd, 1.0);
        c.validate();
    }

    #[test]
    fn derived_counts() {
        let c = SimConfig { vcs: 4, vc_depth: 2, channel_capacity: 8, ..SimConfig::default() };
        assert_eq!(c.buffer_slots_per_router(), 40);
        assert_eq!(c.channel_stages_per_router(), 32);
        assert_eq!(c.nodes(), 64);
    }

    #[test]
    #[should_panic(expected = "at least 2x2")]
    fn tiny_mesh_rejected() {
        SimConfig { width: 1, ..SimConfig::default() }.validate();
    }

    #[test]
    fn fixed_directive() {
        let d = RouterDirective::fixed(EccScheme::Secded);
        assert_eq!(d.gate, None);
        assert!(!d.relaxed);
    }
}
