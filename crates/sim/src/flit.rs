//! Flits and packets.
//!
//! Per the paper's Table 1, packets are 4 flits of 128 bits each. Flit
//! payloads are derived deterministically from the packet/flit identity so
//! the real ECC codecs can operate on actual bits whenever the fault
//! injector corrupts a traversal, without storing 64 bytes per in-flight
//! packet.

use serde::{Deserialize, Serialize};

/// Simulation time in cycles.
pub type Cycle = u64;

/// Flits per packet (Table 1: 4 × 128-bit flits).
pub const FLITS_PER_PACKET: u8 = 4;

/// Sentinel for "no designated downstream VC" (flits sent toward a gated
/// router's bypass, which performs VC allocation at the next powered hop).
pub const NO_VC: u8 = u8::MAX;

/// Position of a flit within its packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlitKind {
    /// First flit; carries routing information.
    Head,
    /// Middle flit.
    Body,
    /// Last flit; releases resources.
    Tail,
}

/// One 128-bit flit in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flit {
    /// Globally unique flit id.
    pub id: u64,
    /// Packet this flit belongs to.
    pub packet_id: u64,
    /// Position within the packet.
    pub kind: FlitKind,
    /// Index within the packet (0-based).
    pub index: u8,
    /// Source node.
    pub src: u16,
    /// Destination node.
    pub dest: u16,
    /// Cycle the packet was injected at the source NI.
    pub injected_at: Cycle,
    /// Hops traversed so far.
    pub hops: u16,
    /// Bit errors accumulated on the journey that no per-hop decoder fixed
    /// (feeds the end-to-end CRC check / silent-corruption accounting).
    pub e2e_flips: u16,
    /// Times this flit was re-transmitted (per-hop or end-to-end).
    pub retx: u16,
    /// ECC scheme protecting the flit on its *current* link (stamped by the
    /// upstream router at link entry; the paper synchronizes this by passing
    /// the mode decision downstream).
    pub hop_scheme: noc_ecc::EccScheme,
    /// Downstream input VC this flit is destined for on its current link
    /// (allocated by the upstream router's VA stage; [`NO_VC`] when the
    /// downstream router is bypassed).
    pub vc: u8,
    /// Bit errors accumulated in the *current per-hop codeword*: a flit
    /// bypassing gated routers is not re-decoded/re-encoded until it reaches
    /// a powered router, so link flips accumulate across the bypass chain.
    pub hop_flips: u16,
    /// End-to-end transmission generation: 0 for the original send,
    /// incremented on every end-to-end recovery re-injection. Receivers
    /// discard flits from superseded generations.
    pub generation: u16,
}

impl Flit {
    /// The deterministic 128-bit payload of this flit (splitmix64-derived).
    pub fn payload(&self) -> u128 {
        let lo = splitmix64(self.packet_id.wrapping_mul(31).wrapping_add(self.index as u64));
        let hi = splitmix64(lo ^ 0x9E37_79B9_7F4A_7C15);
        ((hi as u128) << 64) | lo as u128
    }

    /// Whether this is the head flit.
    pub fn is_head(&self) -> bool {
        matches!(self.kind, FlitKind::Head)
    }

    /// Whether this is the tail flit.
    pub fn is_tail(&self) -> bool {
        matches!(self.kind, FlitKind::Tail)
    }
}

/// Builds the `FLITS_PER_PACKET` flits of one packet.
pub fn make_packet(
    packet_id: u64,
    first_flit_id: u64,
    src: u16,
    dest: u16,
    injected_at: Cycle,
) -> Vec<Flit> {
    (0..FLITS_PER_PACKET)
        .map(|i| Flit {
            id: first_flit_id + i as u64,
            packet_id,
            kind: match i {
                0 => FlitKind::Head,
                i if i == FLITS_PER_PACKET - 1 => FlitKind::Tail,
                _ => FlitKind::Body,
            },
            index: i,
            src,
            dest,
            injected_at,
            hops: 0,
            e2e_flips: 0,
            retx: 0,
            hop_scheme: noc_ecc::EccScheme::None,
            vc: NO_VC,
            hop_flips: 0,
            generation: 0,
        })
        .collect()
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_structure() {
        let flits = make_packet(7, 100, 3, 9, 42);
        assert_eq!(flits.len(), 4);
        assert_eq!(flits[0].kind, FlitKind::Head);
        assert_eq!(flits[1].kind, FlitKind::Body);
        assert_eq!(flits[2].kind, FlitKind::Body);
        assert_eq!(flits[3].kind, FlitKind::Tail);
        assert!(flits.iter().enumerate().all(|(i, f)| f.id == 100 + i as u64));
        assert!(flits.iter().all(|f| f.packet_id == 7 && f.src == 3 && f.dest == 9));
    }

    #[test]
    fn payloads_are_deterministic_and_distinct() {
        let flits = make_packet(1, 0, 0, 1, 0);
        let p0 = flits[0].payload();
        assert_eq!(p0, flits[0].payload());
        assert_ne!(p0, flits[1].payload());
        let other = make_packet(2, 4, 0, 1, 0);
        assert_ne!(p0, other[0].payload());
    }

    #[test]
    fn head_tail_predicates() {
        let flits = make_packet(1, 0, 0, 1, 0);
        assert!(flits[0].is_head() && !flits[0].is_tail());
        assert!(flits[3].is_tail() && !flits[3].is_head());
        assert!(!flits[1].is_head() && !flits[1].is_tail());
    }
}
