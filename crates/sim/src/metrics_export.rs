//! Sampling hooks that project live [`Network`] state into a labeled
//! [`MetricsRegistry`](noc_telemetry::MetricsRegistry).
//!
//! The control loop calls [`declare_network_metrics`] once and then
//! [`export_network_metrics`] at the end of every control step; the
//! registry is rendered to Prometheus text exposition and published
//! outside the simulator. The export is a pure read of simulation state
//! (counters are set to their current absolute totals), so enabling or
//! disabling it cannot change a single simulated byte.

use crate::latency::LatencyHistogram;
use crate::network::Network;
use noc_telemetry::MetricsRegistry;

/// The metric families the simulator exports, as `(name, kind keyword,
/// help)` triples — the single source of truth for declaration, export,
/// and the docs table.
pub const NETWORK_METRICS: &[(&str, &str, &str)] = &[
    ("noc_packets_total", "counter", "Packets by lifecycle event (injected/delivered/dropped)."),
    ("noc_retransmitted_flits_total", "counter", "Flits re-sent by per-hop or end-to-end retry."),
    ("noc_retx_events_total", "counter", "Retransmission events by scope (hop/e2e)."),
    ("noc_corrected_bits_total", "counter", "Bit errors corrected by per-hop ECC."),
    ("noc_faulty_traversals_total", "counter", "Link traversals carrying injected bit flips."),
    ("noc_corrupted_packets_total", "counter", "Packets delivered with undetected corruption."),
    ("noc_reroutes_total", "counter", "Fault-aware detour hops around hard faults."),
    ("noc_gated_router_cycles_total", "counter", "Router-cycles spent power-gated."),
    ("noc_sim_cycle", "gauge", "Current simulated cycle."),
    ("noc_avg_latency_cycles", "gauge", "Mean end-to-end packet latency so far (cycles)."),
    ("noc_power_mw", "gauge", "Mean power over the run so far, by component (mW)."),
    ("noc_temperature_celsius", "gauge", "Die temperature, by stat (mean/max)."),
    ("noc_mean_aging_factor", "gauge", "Mean aging-induced delay factor across routers."),
    ("noc_mttf_hours", "gauge", "Extrapolated network MTTF (0 until any router ages)."),
    ("noc_packet_latency_cycles", "histogram", "End-to-end packet latency distribution."),
];

/// Transaction-layer families for closed-loop (request–reply) workloads,
/// kept OUT of [`NETWORK_METRICS`]: they are declared and exported only
/// when the run actually carries transaction accounting, so open-loop
/// expositions never render empty `noc_txn_*` families.
pub const TXN_METRICS: &[(&str, &str, &str)] = &[
    (
        "noc_txn_transactions_total",
        "counter",
        "Transactions by terminal event (issued/completed/failed/shed).",
    ),
    ("noc_txn_timeouts_total", "counter", "Attempt timeouts (several per retried transaction)."),
    ("noc_txn_retries_total", "counter", "Retry attempts issued after a timeout."),
    ("noc_txn_in_flight", "gauge", "Transactions currently awaiting their reply."),
    (
        "noc_txn_conservation_violations",
        "gauge",
        "Summed per-node conservation error |issued - accounted|; nonzero means leaked transactions.",
    ),
];

/// Declares the transaction-layer families. Idempotent; called lazily by
/// [`export_network_metrics`] on the first closed-loop export.
///
/// # Errors
///
/// Propagates registry validation errors (impossible for the fixed names
/// unless the registry already holds same-name families of another kind).
pub fn declare_txn_metrics(reg: &mut MetricsRegistry) -> Result<(), String> {
    for &(name, kind, help) in TXN_METRICS {
        match kind {
            "counter" => reg.declare_counter(name, help)?,
            "gauge" => reg.declare_gauge(name, help)?,
            _ => unreachable!("unknown kind keyword in TXN_METRICS"),
        }
    }
    Ok(())
}

/// Wall-clock runtime families, deliberately kept OUT of
/// [`NETWORK_METRICS`]: simulation throughput and elapsed time are
/// machine-dependent, so they are only ever rendered into live (hub)
/// snapshots, never into the deterministic `--metrics-out` artifact.
pub const RUNTIME_METRICS: &[(&str, &str)] = &[
    ("noc_sim_cycles_per_sec", "Simulated cycles per wall-clock second (live only)."),
    ("noc_sim_wall_seconds", "Wall-clock seconds elapsed in the current run (live only)."),
];

/// Declares the wall-clock runtime gauges. Idempotent.
///
/// # Errors
///
/// Propagates registry validation errors (impossible for the fixed names
/// unless the registry already holds same-name families of another kind).
pub fn declare_runtime_metrics(reg: &mut MetricsRegistry) -> Result<(), String> {
    for &(name, help) in RUNTIME_METRICS {
        reg.declare_gauge(name, help)?;
    }
    Ok(())
}

/// Sets the wall-clock runtime gauges from cycles simulated so far and the
/// elapsed wall time. Call only on live/hub registries — these values are
/// nondeterministic by nature.
///
/// # Errors
///
/// Propagates registry errors (malformed caller-supplied label names).
pub fn export_runtime_metrics(
    reg: &mut MetricsRegistry,
    cycles: u64,
    wall: std::time::Duration,
    labels: &[(&str, &str)],
) -> Result<(), String> {
    let secs = wall.as_secs_f64();
    let cps = if secs > 0.0 { cycles as f64 / secs } else { 0.0 };
    reg.gauge_set("noc_sim_cycles_per_sec", labels, cps)?;
    reg.gauge_set("noc_sim_wall_seconds", labels, secs)?;
    Ok(())
}

/// Declares every simulator metric family in `reg`. Idempotent; call once
/// per run before the first [`export_network_metrics`].
///
/// # Errors
///
/// Propagates registry validation errors (impossible for the fixed names
/// above unless the registry already holds a same-name family of another
/// kind).
pub fn declare_network_metrics(reg: &mut MetricsRegistry) -> Result<(), String> {
    for &(name, kind, help) in NETWORK_METRICS {
        match kind {
            "counter" => reg.declare_counter(name, help)?,
            "gauge" => reg.declare_gauge(name, help)?,
            "histogram" => {
                reg.declare_histogram(name, help, &LatencyHistogram::exposition_bounds())?;
            }
            _ => unreachable!("unknown kind keyword in NETWORK_METRICS"),
        }
    }
    Ok(())
}

/// Samples the network's current aggregate state into `reg`.
///
/// `labels` (e.g. `design`, `workload`) are attached to every series so
/// multi-run hubs stay distinguishable. Counters are set to their current
/// absolute totals — the registry mirrors simulation state rather than
/// owning it, which keeps the export stateless and replayable.
///
/// # Errors
///
/// Propagates registry errors (malformed caller-supplied label names).
pub fn export_network_metrics(
    reg: &mut MetricsRegistry,
    net: &Network,
    labels: &[(&str, &str)],
) -> Result<(), String> {
    let report = net.report();
    let s = &report.stats;
    let with = |event: &'static str| -> Vec<(&str, &str)> {
        let mut l = labels.to_vec();
        l.push(("event", event));
        l
    };

    reg.counter_set("noc_packets_total", &with("injected"), s.packets_injected as f64)?;
    reg.counter_set("noc_packets_total", &with("delivered"), s.packets_delivered as f64)?;
    reg.counter_set("noc_packets_total", &with("dropped"), s.packets_dropped as f64)?;
    reg.counter_set("noc_retransmitted_flits_total", labels, s.retransmitted_flits as f64)?;
    let scoped = |scope: &'static str| -> Vec<(&str, &str)> {
        let mut l = labels.to_vec();
        l.push(("scope", scope));
        l
    };
    reg.counter_set("noc_retx_events_total", &scoped("hop"), s.hop_retx_events as f64)?;
    reg.counter_set("noc_retx_events_total", &scoped("e2e"), s.e2e_retx_packets as f64)?;
    reg.counter_set("noc_corrected_bits_total", labels, s.corrected_bits as f64)?;
    reg.counter_set("noc_faulty_traversals_total", labels, s.faulty_traversals as f64)?;
    reg.counter_set("noc_corrupted_packets_total", labels, s.corrupted_packets as f64)?;
    reg.counter_set("noc_reroutes_total", labels, s.reroutes as f64)?;
    reg.counter_set("noc_gated_router_cycles_total", labels, s.gated_router_cycles as f64)?;

    reg.gauge_set("noc_sim_cycle", labels, net.now() as f64)?;
    reg.gauge_set("noc_avg_latency_cycles", labels, s.avg_latency())?;
    let comp = |component: &'static str| -> Vec<(&str, &str)> {
        let mut l = labels.to_vec();
        l.push(("component", component));
        l
    };
    reg.gauge_set("noc_power_mw", &comp("dynamic"), report.power.dynamic_mw)?;
    reg.gauge_set("noc_power_mw", &comp("static"), report.power.static_mw)?;
    let stat = |name: &'static str| -> Vec<(&str, &str)> {
        let mut l = labels.to_vec();
        l.push(("stat", name));
        l
    };
    reg.gauge_set("noc_temperature_celsius", &stat("mean"), report.mean_temp_c)?;
    reg.gauge_set("noc_temperature_celsius", &stat("max"), report.max_temp_c)?;
    reg.gauge_set("noc_mean_aging_factor", labels, report.mean_aging_factor)?;
    reg.gauge_set("noc_mttf_hours", labels, report.mttf_hours.unwrap_or(0.0))?;

    let h = &s.latency_hist;
    reg.histogram_set(
        "noc_packet_latency_cycles",
        labels,
        &h.cumulative_counts(),
        s.latency_sum as f64,
        h.count(),
    )?;

    if let Some(txn) = &report.txn {
        declare_txn_metrics(reg)?;
        let t = |event: &'static str| -> Vec<(&str, &str)> {
            let mut l = labels.to_vec();
            l.push(("event", event));
            l
        };
        reg.counter_set("noc_txn_transactions_total", &t("issued"), txn.issued as f64)?;
        reg.counter_set("noc_txn_transactions_total", &t("completed"), txn.completed as f64)?;
        reg.counter_set("noc_txn_transactions_total", &t("failed"), txn.failed as f64)?;
        reg.counter_set("noc_txn_transactions_total", &t("shed"), txn.shed as f64)?;
        reg.counter_set("noc_txn_timeouts_total", labels, txn.timeouts as f64)?;
        reg.counter_set("noc_txn_retries_total", labels, txn.retries as f64)?;
        reg.gauge_set("noc_txn_in_flight", labels, txn.in_flight as f64)?;
        reg.gauge_set("noc_txn_conservation_violations", labels, txn.violations as f64)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_telemetry::render_exposition;
    use noc_traffic::WorkloadSpec;

    #[test]
    fn declare_then_export_renders_all_families() {
        let mut cfg = crate::SimConfig::default();
        cfg.varius.base_rate = 0.0;
        cfg.varius.min_rate = 0.0;
        let mut net = Network::new(cfg, WorkloadSpec::uniform(0.02, 5), 7);
        assert!(net.run_cycles(500_000), "run did not finish");

        let mut reg = MetricsRegistry::new();
        declare_network_metrics(&mut reg).unwrap();
        declare_network_metrics(&mut reg).unwrap(); // idempotent
        export_network_metrics(&mut reg, &net, &[("design", "baseline")]).unwrap();

        let text = render_exposition(&reg);
        for &(name, _, _) in NETWORK_METRICS {
            assert!(text.contains(name), "family `{name}` missing from exposition");
        }
        assert!(text.contains("noc_packets_total{design=\"baseline\",event=\"delivered\"} 320"));
        assert!(text.contains("noc_packet_latency_cycles_count{design=\"baseline\"} 320"));
        // Open-loop runs must not leak transaction families into the text.
        assert!(!text.contains("noc_txn_"), "open-loop exposition carries txn families");
    }

    #[test]
    fn closed_loop_export_renders_txn_families() {
        let mut cfg = crate::SimConfig::default();
        cfg.varius.base_rate = 0.0;
        cfg.varius.min_rate = 0.0;
        cfg.width = 4;
        cfg.height = 4;
        let spec = WorkloadSpec::reqreply(0.05, 2, noc_traffic::ReqReplySpec::default());
        let mut net = Network::new(cfg, spec, 7);
        assert!(net.run_cycles(500_000), "run did not finish");

        let mut reg = MetricsRegistry::new();
        declare_network_metrics(&mut reg).unwrap();
        export_network_metrics(&mut reg, &net, &[("design", "baseline")]).unwrap();

        let text = render_exposition(&reg);
        for &(name, _, _) in TXN_METRICS {
            assert!(text.contains(name), "family `{name}` missing from exposition");
        }
        assert!(
            text.contains("noc_txn_transactions_total{design=\"baseline\",event=\"completed\"} 32")
        );
        assert!(text.contains("noc_txn_conservation_violations{design=\"baseline\"} 0"));
    }

    #[test]
    fn runtime_gauges_render_and_stay_out_of_network_table() {
        // The runtime families are wall-clock-only, so they must not appear
        // in the deterministic NETWORK_METRICS declaration table.
        for &(name, _) in RUNTIME_METRICS {
            assert!(NETWORK_METRICS.iter().all(|&(n, _, _)| n != name));
        }
        let mut reg = MetricsRegistry::new();
        declare_runtime_metrics(&mut reg).unwrap();
        declare_runtime_metrics(&mut reg).unwrap(); // idempotent
        export_runtime_metrics(
            &mut reg,
            10_000,
            std::time::Duration::from_millis(500),
            &[("design", "ci")],
        )
        .unwrap();
        let text = render_exposition(&reg);
        assert!(text.contains("noc_sim_cycles_per_sec{design=\"ci\"} 20000"), "{text}");
        assert!(text.contains("noc_sim_wall_seconds{design=\"ci\"} 0.5"), "{text}");
        // Zero elapsed time reports zero throughput rather than dividing.
        export_runtime_metrics(&mut reg, 5, std::time::Duration::ZERO, &[]).unwrap();
        assert!(render_exposition(&reg).contains("noc_sim_cycles_per_sec 0\n"));
    }

    #[test]
    fn export_is_a_pure_read() {
        let mut cfg = crate::SimConfig::default();
        cfg.varius.base_rate = 0.0;
        cfg.varius.min_rate = 0.0;
        let mut net = Network::new(cfg, WorkloadSpec::uniform(0.02, 3), 7);
        assert!(net.run_cycles(500_000));
        let before = format!("{:?}", net.report());
        let mut reg = MetricsRegistry::new();
        declare_network_metrics(&mut reg).unwrap();
        export_network_metrics(&mut reg, &net, &[]).unwrap();
        export_network_metrics(&mut reg, &net, &[]).unwrap();
        let after = format!("{:?}", net.report());
        assert_eq!(before, after, "export must not perturb simulation state");
    }
}
