//! Per-flit latency attribution and spatial accumulators.
//!
//! When installed on a [`crate::Network`] (see `Network::install_attribution`),
//! this module follows every packet's head flit through the pipeline and
//! charges each measured delay — link crossings, router pipeline stages,
//! hop-NACK stalls, bypass latches, wasted end-to-end generations, tail
//! drain — to one latency component. The charged intervals are disjoint
//! sub-intervals of the packet's lifetime, so the residual (queuing) is
//! non-negative and the components sum *exactly* to the measured end-to-end
//! latency (checked by a `debug_assert` at completion).
//!
//! Alongside the per-packet spans it keeps per-channel and per-router
//! counters (flits carried, NACKs, gated residency, temperature) that fold
//! into heatmap grids and per-physical-link statistics at run end.

use crate::flit::{Cycle, Flit};
use crate::topology::{Mesh, Port, DIRS};
use noc_telemetry::{
    AttributionArtifacts, HeatGrid, LatencyBreakdown, LatencyComponents, LinkStat, PacketLatency,
};
use std::collections::HashMap;

/// Live accounting for one in-flight packet.
#[derive(Debug, Clone, Copy, Default)]
struct PacketSpan {
    /// Start of the current end-to-end generation (injection time for the
    /// first one, retransmission time afterwards).
    gen_start: Cycle,
    /// When the head flit of the current generation ejected, if it has.
    head_eject: Option<Cycle>,
    /// Link + pipeline cycles charged to the current generation's head.
    gen_traversal: u64,
    /// Bypass-latch cycles charged to the current generation's head.
    gen_bypass: u64,
    /// Hop-NACK stall cycles charged to the current generation's head.
    gen_retx: u64,
    /// Whole wasted generations, in cycles (charged at each e2e retx).
    retx_wasted: u64,
    /// Powered link crossings of the current generation's head.
    hops: u16,
    /// Bypass crossings of the current generation's head.
    bypass_hops: u16,
    /// Hop-level NACKs over the packet's whole lifetime (any flit).
    hop_retx: u16,
    /// End-to-end retransmissions so far.
    e2e_retx: u16,
}

/// The attribution engine: per-packet spans plus spatial accumulators.
///
/// All hooks are `O(1)`; the simulator calls them only when attribution is
/// installed, so the disabled path stays a single `Option` branch.
#[derive(Debug)]
pub(crate) struct Attribution {
    spans: HashMap<u64, PacketSpan>,
    breakdown: LatencyBreakdown,
    /// Flits pushed into each directed channel (indexed like
    /// `Network::channels`: `router * DIRS + dir`).
    link_flits: Vec<u64>,
    /// Hop-NACKs charged to each directed channel.
    link_retx: Vec<u64>,
    /// Cycles each router spent gated, waking, or hard-failed.
    router_gated: Vec<u64>,
    /// Cycles the gated-residency counters cover.
    gate_cycles: u64,
    /// Temperature sums per router, sampled once per epoch.
    temp_sum: Vec<f64>,
    /// Epochs sampled into `temp_sum`.
    temp_epochs: u64,
}

impl Attribution {
    pub(crate) fn new(nodes: usize) -> Self {
        Attribution {
            spans: HashMap::new(),
            breakdown: LatencyBreakdown::default(),
            link_flits: vec![0; nodes * DIRS],
            link_retx: vec![0; nodes * DIRS],
            router_gated: vec![0; nodes],
            gate_cycles: 0,
            temp_sum: vec![0.0; nodes],
            temp_epochs: 0,
        }
    }

    /// A packet entered the source NI queue.
    pub(crate) fn on_inject(&mut self, packet: u64, now: Cycle) {
        self.spans.insert(packet, PacketSpan { gen_start: now, ..PacketSpan::default() });
    }

    /// A flit was pushed into directed channel `ci`; `cost` is the cycles
    /// until it becomes consumable downstream.
    pub(crate) fn on_link_flit(&mut self, ci: usize, flit: &Flit, cost: u64, bypass: bool) {
        self.link_flits[ci] += 1;
        if !flit.is_head() {
            return;
        }
        if let Some(span) = self.spans.get_mut(&flit.packet_id) {
            if bypass {
                span.gen_bypass += cost;
                span.bypass_hops = span.bypass_hops.saturating_add(1);
            } else {
                span.gen_traversal += cost;
                span.hops = span.hops.saturating_add(1);
            }
        }
    }

    /// A head flit was enqueued into a VC with `cost` pipeline cycles before
    /// it can be granted.
    pub(crate) fn on_pipeline(&mut self, packet: u64, cost: u64) {
        if let Some(span) = self.spans.get_mut(&packet) {
            span.gen_traversal += cost;
        }
    }

    /// A flit held in directed channel `ci` was NACKed and will be
    /// retransmitted after `cost` stall cycles.
    pub(crate) fn on_hop_retx(&mut self, ci: usize, flit: &Flit, cost: u64) {
        self.link_retx[ci] += 1;
        if let Some(span) = self.spans.get_mut(&flit.packet_id) {
            span.hop_retx = span.hop_retx.saturating_add(1);
            if flit.is_head() {
                span.gen_retx += cost;
            }
        }
    }

    /// The e2e CRC failed and the packet restarts from the source NI. The
    /// whole wasted generation `[gen_start, now)` is charged to
    /// retransmission and the per-generation accumulators reset, so nothing
    /// inside the wasted interval is double counted.
    pub(crate) fn on_e2e_retx(&mut self, packet: u64, now: Cycle) {
        if let Some(span) = self.spans.get_mut(&packet) {
            span.retx_wasted += now.saturating_sub(span.gen_start);
            span.gen_start = now;
            span.head_eject = None;
            span.gen_traversal = 0;
            span.gen_bypass = 0;
            span.gen_retx = 0;
            span.hops = 0;
            span.bypass_hops = 0;
            span.e2e_retx = span.e2e_retx.saturating_add(1);
        }
    }

    /// The head flit of the current generation ejected at the destination.
    pub(crate) fn on_head_eject(&mut self, packet: u64, now: Cycle) {
        if let Some(span) = self.spans.get_mut(&packet) {
            span.head_eject = Some(now);
        }
    }

    /// The tail flit ejected and the packet completed with the measured
    /// end-to-end `latency` (which spans `[injected_at, now + 1)`).
    pub(crate) fn on_complete(
        &mut self,
        packet: u64,
        src: u16,
        dest: u16,
        now: Cycle,
        latency: u64,
    ) {
        let Some(span) = self.spans.remove(&packet) else { return };
        let components = LatencyComponents {
            queuing: 0,
            traversal: span.gen_traversal,
            serialization: now.saturating_sub(span.head_eject.unwrap_or(now)),
            retransmission: span.retx_wasted + span.gen_retx,
            bypass: span.gen_bypass,
            ejection: 1,
        };
        let measured = components.total();
        debug_assert!(
            measured <= latency,
            "packet {packet}: charged {measured} cycles > measured latency {latency}"
        );
        let components =
            LatencyComponents { queuing: latency.saturating_sub(measured), ..components };
        debug_assert_eq!(components.total(), latency, "packet {packet}: components must sum");
        self.breakdown.record(PacketLatency {
            packet,
            src,
            dest,
            latency,
            components,
            hops: span.hops,
            bypass_hops: span.bypass_hops,
            hop_retx: span.hop_retx,
            e2e_retx: span.e2e_retx,
        });
    }

    /// The packet was dropped; forget its span.
    pub(crate) fn on_drop(&mut self, packet: u64) {
        self.spans.remove(&packet);
    }

    /// One gating-phase sample: which routers are gated/waking/failed.
    pub(crate) fn on_gate_sample(&mut self, router: usize) {
        self.router_gated[router] += 1;
    }

    /// Advances the gated-residency denominator by one cycle.
    pub(crate) fn on_gate_cycle(&mut self) {
        self.gate_cycles += 1;
    }

    /// One epoch's temperature sample for `router`.
    pub(crate) fn on_temp_sample(&mut self, router: usize, temp_c: f64) {
        self.temp_sum[router] += temp_c;
    }

    /// Marks one epoch's worth of temperature samples complete.
    pub(crate) fn on_temp_epoch(&mut self) {
        self.temp_epochs += 1;
    }

    /// Folds the accumulators into renderable artifacts. `cycles` is the
    /// simulated span the utilization figures normalize against.
    pub(crate) fn finish(self, mesh: &Mesh, cycles: u64) -> AttributionArtifacts {
        let nodes = mesh.nodes();
        let denom = cycles.max(1) as f64;

        // 2·width·height − width − height physical links on a mesh: fold the
        // two directed channels of each XPlus/YPlus edge together.
        let mut links = Vec::new();
        for r in 0..nodes {
            for dir in [Port::XPlus, Port::YPlus] {
                if let Some(v) = mesh.neighbor(r, dir) {
                    let fwd = r * DIRS + dir.index();
                    let rev = v * DIRS + dir.opposite().index();
                    links.push(LinkStat {
                        a: r as u32,
                        b: v as u32,
                        flits: self.link_flits[fwd] + self.link_flits[rev],
                        retx: self.link_retx[fwd] + self.link_retx[rev],
                    });
                }
            }
        }
        links.sort_by_key(|l| (l.a, l.b));

        let mut utilization = HeatGrid::new("router_utilization", mesh.width, mesh.height);
        let mut retx = HeatGrid::new("router_retx", mesh.width, mesh.height);
        let mut residency = HeatGrid::new("router_gate_residency", mesh.width, mesh.height);
        let mut temperature = HeatGrid::new("router_temperature", mesh.width, mesh.height);
        for r in 0..nodes {
            let flits: u64 = self.link_flits[r * DIRS..(r + 1) * DIRS].iter().sum();
            let nacks: u64 = self.link_retx[r * DIRS..(r + 1) * DIRS].iter().sum();
            utilization.cells[r] = flits as f64 / denom;
            retx.cells[r] = nacks as f64;
            residency.cells[r] = self.router_gated[r] as f64 / self.gate_cycles.max(1) as f64;
            temperature.cells[r] = self.temp_sum[r] / self.temp_epochs.max(1) as f64;
        }

        AttributionArtifacts {
            breakdown: self.breakdown,
            links,
            grids: vec![utilization, retx, residency, temperature],
            cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::make_packet;

    fn head(packet: u64) -> Flit {
        make_packet(packet, 0, 0, 5, 0)[0]
    }

    #[test]
    fn components_sum_exactly_without_retx() {
        let mesh = Mesh::new(8, 8);
        let mut att = Attribution::new(mesh.nodes());
        att.on_inject(7, 100);
        att.on_pipeline(7, 4);
        att.on_link_flit(0, &head(7), 1, false);
        att.on_link_flit(4, &head(7), 1, false);
        att.on_head_eject(7, 130);
        att.on_complete(7, 0, 5, 133, 34); // injected_at 100, done at 133+1
        let bd = &att.breakdown;
        assert_eq!(bd.packets, 1);
        let rec = bd.records[0];
        assert_eq!(rec.components.total(), 34);
        assert_eq!(rec.components.traversal, 6);
        assert_eq!(rec.components.serialization, 3);
        assert_eq!(rec.components.ejection, 1);
        assert_eq!(rec.components.queuing, 34 - 6 - 3 - 1);
        assert_eq!(rec.hops, 2);
    }

    #[test]
    fn e2e_retx_charges_whole_wasted_generation() {
        let mesh = Mesh::new(8, 8);
        let mut att = Attribution::new(mesh.nodes());
        att.on_inject(9, 50);
        att.on_pipeline(9, 4);
        att.on_link_flit(0, &head(9), 1, false);
        att.on_head_eject(9, 70);
        att.on_e2e_retx(9, 80); // generation [50, 80) wasted
        att.on_pipeline(9, 4);
        att.on_head_eject(9, 95);
        att.on_complete(9, 0, 5, 99, 50); // [50, 100)
        let rec = att.breakdown.records[0];
        assert_eq!(rec.components.retransmission, 30);
        assert_eq!(rec.components.traversal, 4, "wasted generation's charges were reset");
        assert_eq!(rec.e2e_retx, 1);
        assert_eq!(rec.components.total(), 50);
    }

    #[test]
    fn finish_folds_directed_channels_into_physical_links() {
        let mesh = Mesh::new(8, 8);
        let mut att = Attribution::new(mesh.nodes());
        // One flit each way across the 0 <-> 1 link.
        att.on_link_flit(Port::XPlus.index(), &head(1), 1, false);
        att.on_link_flit(DIRS + Port::XMinus.index(), &head(2), 1, false);
        let art = att.finish(&mesh, 1000);
        assert_eq!(art.links.len(), 112, "8x8 mesh has 112 physical links");
        let l01 = art.links.iter().find(|l| l.a == 0 && l.b == 1).unwrap();
        assert_eq!(l01.flits, 2);
        assert_eq!(art.grids.len(), 4);
        assert_eq!(art.grids[0].cells.len(), 64);
    }
}
