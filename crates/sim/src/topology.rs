//! 2D-mesh topology: ports, coordinates, and XY dimension-order routing.

use serde::{Deserialize, Serialize};

/// Router port indices. The four direction ports connect to mesh neighbors;
/// `LOCAL` connects to the node's network interface (core).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Port {
    /// +X (east) neighbor.
    XPlus = 0,
    /// −X (west) neighbor.
    XMinus = 1,
    /// +Y (north) neighbor.
    YPlus = 2,
    /// −Y (south) neighbor.
    YMinus = 3,
    /// Local core / network interface.
    Local = 4,
}

/// Number of ports per router.
pub const PORTS: usize = 5;
/// Number of direction (non-local) ports per router.
pub const DIRS: usize = 4;

impl Port {
    /// All ports in index order.
    pub const ALL: [Port; PORTS] =
        [Port::XPlus, Port::XMinus, Port::YPlus, Port::YMinus, Port::Local];

    /// The four direction ports.
    pub const DIRECTIONS: [Port; DIRS] = [Port::XPlus, Port::XMinus, Port::YPlus, Port::YMinus];

    /// Port from its index.
    ///
    /// # Panics
    ///
    /// Panics if `i >= PORTS`.
    pub fn from_index(i: usize) -> Port {
        Port::ALL[i]
    }

    /// Index of this port.
    pub fn index(self) -> usize {
        self as usize
    }

    /// The opposite direction port (the input port a flit arrives on after
    /// leaving through `self`).
    ///
    /// # Panics
    ///
    /// Panics for [`Port::Local`].
    pub fn opposite(self) -> Port {
        match self {
            Port::XPlus => Port::XMinus,
            Port::XMinus => Port::XPlus,
            Port::YPlus => Port::YMinus,
            Port::YMinus => Port::YPlus,
            Port::Local => panic!("local port has no opposite"),
        }
    }
}

/// Mesh geometry helper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mesh {
    /// Width in tiles.
    pub width: usize,
    /// Height in tiles.
    pub height: usize,
}

impl Mesh {
    /// Creates a mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be nonzero");
        Mesh { width, height }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.width * self.height
    }

    /// (x, y) of node `n`.
    pub fn coords(&self, n: usize) -> (usize, usize) {
        (n % self.width, n / self.width)
    }

    /// Node index of (x, y).
    pub fn node(&self, x: usize, y: usize) -> usize {
        y * self.width + x
    }

    /// Neighbor of `n` in direction `dir`, if it exists.
    pub fn neighbor(&self, n: usize, dir: Port) -> Option<usize> {
        let (x, y) = self.coords(n);
        match dir {
            Port::XPlus if x + 1 < self.width => Some(self.node(x + 1, y)),
            Port::XMinus if x > 0 => Some(self.node(x - 1, y)),
            Port::YPlus if y + 1 < self.height => Some(self.node(x, y + 1)),
            Port::YMinus if y > 0 => Some(self.node(x, y - 1)),
            _ => None,
        }
    }

    /// XY dimension-order route: the output port a flit at `here` destined
    /// for `dest` must take (X first, then Y; `Local` when arrived).
    pub fn xy_route(&self, here: usize, dest: usize) -> Port {
        let (x, y) = self.coords(here);
        let (dx, dy) = self.coords(dest);
        if dx > x {
            Port::XPlus
        } else if dx < x {
            Port::XMinus
        } else if dy > y {
            Port::YPlus
        } else if dy < y {
            Port::YMinus
        } else {
            Port::Local
        }
    }

    /// Manhattan hop distance between two nodes.
    pub fn hops(&self, a: usize, b: usize) -> usize {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        ax.abs_diff(bx) + ay.abs_diff(by)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_roundtrip() {
        let m = Mesh::new(8, 8);
        for n in 0..64 {
            let (x, y) = m.coords(n);
            assert_eq!(m.node(x, y), n);
        }
    }

    #[test]
    fn neighbors_respect_boundaries() {
        let m = Mesh::new(8, 8);
        assert_eq!(m.neighbor(0, Port::XMinus), None);
        assert_eq!(m.neighbor(0, Port::YMinus), None);
        assert_eq!(m.neighbor(0, Port::XPlus), Some(1));
        assert_eq!(m.neighbor(0, Port::YPlus), Some(8));
        assert_eq!(m.neighbor(63, Port::XPlus), None);
        assert_eq!(m.neighbor(63, Port::YPlus), None);
    }

    #[test]
    fn xy_route_goes_x_first() {
        let m = Mesh::new(8, 8);
        // From (0,0) to (3,2): X first.
        assert_eq!(m.xy_route(0, m.node(3, 2)), Port::XPlus);
        // From (3,0) to (3,2): then Y.
        assert_eq!(m.xy_route(m.node(3, 0), m.node(3, 2)), Port::YPlus);
        // Arrived.
        assert_eq!(m.xy_route(5, 5), Port::Local);
    }

    #[test]
    fn xy_route_always_reaches_destination() {
        let m = Mesh::new(8, 8);
        for src in 0..64 {
            for dest in 0..64 {
                let mut here = src;
                let mut steps = 0;
                while here != dest {
                    let p = m.xy_route(here, dest);
                    assert_ne!(p, Port::Local);
                    here = m.neighbor(here, p).expect("route fell off mesh");
                    steps += 1;
                    assert!(steps <= 14, "route too long {src}->{dest}");
                }
                assert_eq!(steps, m.hops(src, dest), "minimal route {src}->{dest}");
            }
        }
    }

    #[test]
    fn opposite_is_involution() {
        for p in Port::DIRECTIONS {
            assert_eq!(p.opposite().opposite(), p);
        }
    }

    #[test]
    #[should_panic(expected = "no opposite")]
    fn local_has_no_opposite() {
        let _ = Port::Local.opposite();
    }
}
