//! The cycle-accurate simulation kernel.
//!
//! One [`Network`] instance simulates an entire run: mesh of routers,
//! inter-router channels, network interfaces (NIs), workload injection,
//! fault injection with real ECC decoding, power/thermal/aging epochs, and
//! the control-policy hook.
//!
//! # Cycle phase order (deterministic)
//!
//! 1. **Router phase** — powered routers perform switch allocation and move
//!    flits from input VCs into output channels or eject them at the NI;
//!    gated routers forward flits channel-to-channel through the bypass
//!    switch.
//! 2. **Delivery phase** — ready channel heads enter downstream input VCs
//!    (this is where link faults are sampled and per-hop ECC decodes run);
//!    NI injection queues feed local input ports.
//! 3. **Gating phase** — idle detection, proactive/reactive gate and wake
//!    transitions, occupancy accounting.
//! 4. **Workload phase** — the traffic generator is polled and new packets
//!    enter the NI injection queues.
//! 5. **Epoch phase** — every `epoch_cycles`: energy is settled, the
//!    thermal grid steps, aging accumulates, and per-router error rates are
//!    refreshed.

use crate::attribution::Attribution;
use crate::channel::Channel;
use crate::config::{RouterDirective, SimConfig};
use crate::flit::{make_packet, Cycle, Flit, NO_VC};
use crate::health::HealthRouter;
use crate::journey::JourneyTracker;
use crate::router::{GateState, InputVc, Router};
use crate::stats::{NetworkStats, RouterObservation, RunReport, StallReport, TxnSummary};
use crate::topology::{Mesh, Port, DIRS, PORTS};
use noc_ecc::{DecodeStatus, EccScheme, EccSuite};
use noc_fault::{network_mttf, AgingState, FaultInjector, HardFaultTarget, ThermalGrid};
use noc_power::{EnergyLedger, RouterLeakageSpec, CLOCK_PERIOD_NS};
use noc_telemetry::{
    AttributionArtifacts, Event, GateEdge, JourneyLog, Profiler, RetxScope, SharedRecorder, Tracer,
};
use noc_traffic::{ReqReplyWorkload, TrafficGen, TxnEventKind, TxnStats, Workload, WorkloadSpec};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::collections::{BTreeMap, HashSet};
use std::time::Instant;

/// Per-packet reassembly state at a destination NI.
#[derive(Debug, Default, Clone, Copy)]
struct RecvState {
    flits: u8,
    flips: u32,
    crc_failed: bool,
}

/// A network interface: injection queue and reassembly buffers.
#[derive(Debug, Default, Clone)]
struct Ni {
    inject: VecDeque<Flit>,
    recv: HashMap<u64, RecvState>,
}

/// The simulated network.
pub struct Network {
    cfg: SimConfig,
    mesh: Mesh,
    now: Cycle,
    routers: Vec<Router>,
    /// Outgoing channel per (router, direction); `None` at mesh boundaries.
    channels: Vec<Option<Channel>>,
    nis: Vec<Ni>,
    traffic: Box<dyn Workload>,
    suite: EccSuite,
    injector: FaultInjector,
    thermal: ThermalGrid,
    aging: Vec<AgingState>,
    /// Current per-bit error rate per (upstream) router.
    re: Vec<f64>,
    ledger: EnergyLedger,
    stats: NetworkStats,
    outstanding: Vec<usize>,
    next_packet_id: u64,
    next_flit_id: u64,
    completed: u64,
    /// Structured event trace; `None` means tracing is disabled and every
    /// emission site is a single not-taken branch with zero allocation.
    tracer: Option<Tracer>,
    /// Self-profiling hooks (section timers + pipeline-phase counters);
    /// `None` means profiling is disabled.
    profiler: Option<Profiler>,
    /// Per-flit latency attribution + spatial accumulators; `None` means
    /// attribution is disabled and every hook site is a single branch.
    attribution: Option<Attribution>,
    /// Link/router health map + fault-aware route tables.
    health: HealthRouter,
    /// Current down/up state per scheduled hard fault (transition edges are
    /// detected against this).
    fault_state: Vec<bool>,
    /// Links taken down by a currently-active *fail-stop* fault (indexed
    /// like `channels`); intermittent outages stall flits but do not purge.
    failstop_link_down: Vec<bool>,
    /// Routers taken down by a currently-active fail-stop fault.
    failstop_router_down: Vec<bool>,
    /// Connected-component id per router over the fail-stop-surviving
    /// topology (intermittent outages ignored). Packets whose source and
    /// destination sit in different components can never be delivered.
    fs_comp: Vec<u32>,
    /// Packets already accounted as dropped (guards double counting when a
    /// packet is disturbed by several faults or escalation paths).
    dropped_ids: HashSet<u64>,
    /// Last cycle the watchdog observed forward progress.
    last_progress: Cycle,
    /// Progress score (delivered + dropped) at `last_progress`.
    last_score: u64,
    /// Set when the stall watchdog aborted the run.
    stall: Option<StallReport>,
    /// Flight recorder (`noc-blackbox`): a bounded ring of recent events
    /// shared with the harness so post-mortem bundles survive panics.
    /// `None` means recording is disabled and every feed site is a single
    /// branch.
    blackbox: Option<SharedRecorder>,
    /// Sampled per-packet journey tracing (`noc-journey`); `None` means
    /// tracing is disabled and every hook site is a single branch.
    journey: Option<JourneyTracker>,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("now", &self.now)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Network {
    /// Builds a network for `cfg` driven by `workload`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`SimConfig::validate`]).
    pub fn new(cfg: SimConfig, workload: WorkloadSpec, traffic_seed: u64) -> Self {
        if let Some(rr) = workload.reqreply.clone() {
            let w = ReqReplyWorkload::new(workload, rr, cfg.width, cfg.height, traffic_seed);
            return Self::with_workload(cfg, Box::new(w));
        }
        let gen = TrafficGen::new(workload, cfg.width, cfg.height, traffic_seed);
        Self::with_workload(cfg, Box::new(gen))
    }

    /// Builds a network driven by an arbitrary [`Workload`] — e.g. a
    /// [`noc_traffic::TraceReplay`] of a captured trace.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`SimConfig::validate`]).
    pub fn with_workload(cfg: SimConfig, workload: Box<dyn Workload>) -> Self {
        cfg.validate();
        let mesh = Mesh::new(cfg.width, cfg.height);
        let n = mesh.nodes();
        let routers: Vec<Router> =
            (0..n).map(|id| Router::new(id, cfg.vcs, cfg.vc_depth, cfg.default_scheme)).collect();
        let mut channels = Vec::with_capacity(n * DIRS);
        for r in 0..n {
            for dir in Port::DIRECTIONS {
                channels.push(mesh.neighbor(r, dir).map(|_| Channel::new(cfg.channel_capacity)));
            }
        }
        let thermal = ThermalGrid::new(cfg.thermal, cfg.width, cfg.height);
        let base_re = cfg.varius.bit_error_rate(thermal.temp_c(0), cfg.vdd, 0.0);
        let health = HealthRouter::new(mesh);
        let n_faults = cfg.hard_faults.faults.len();
        Network {
            health,
            fault_state: vec![false; n_faults],
            failstop_link_down: vec![false; n * DIRS],
            failstop_router_down: vec![false; n],
            fs_comp: vec![0; n],
            dropped_ids: HashSet::new(),
            last_progress: 0,
            last_score: 0,
            stall: None,
            blackbox: None,
            mesh,
            now: 0,
            routers,
            channels,
            nis: vec![Ni::default(); n],
            traffic: workload,
            suite: EccSuite::new(),
            injector: FaultInjector::new(cfg.seed),
            thermal,
            aging: vec![AgingState::new(); n],
            re: vec![base_re; n],
            ledger: EnergyLedger::new(),
            stats: NetworkStats::default(),
            outstanding: vec![0; n],
            next_packet_id: 0,
            next_flit_id: 0,
            completed: 0,
            tracer: None,
            profiler: None,
            attribution: None,
            journey: None,
            cfg,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// Installs a structured event tracer; subsequent cycles emit events.
    pub fn install_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
        self.traffic.set_txn_event_recording(true);
    }

    /// The installed tracer, if any.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// Mutable access to the installed tracer (e.g. for control-layer
    /// events emitted between cycles).
    pub fn tracer_mut(&mut self) -> Option<&mut Tracer> {
        self.tracer.as_mut()
    }

    /// Removes and returns the tracer, disabling tracing.
    pub fn take_tracer(&mut self) -> Option<Tracer> {
        if self.blackbox.is_none() && self.journey.is_none() {
            self.traffic.set_txn_event_recording(false);
        }
        self.tracer.take()
    }

    /// Installs a self-profiler; subsequent cycles accumulate section
    /// timings and pipeline-phase counters.
    pub fn install_profiler(&mut self, profiler: Profiler) {
        self.profiler = Some(profiler);
    }

    /// Shared access to the installed profiler (e.g. to read the span tree).
    pub fn profiler(&self) -> Option<&Profiler> {
        self.profiler.as_ref()
    }

    /// Mutable access to the installed profiler.
    pub fn profiler_mut(&mut self) -> Option<&mut Profiler> {
        self.profiler.as_mut()
    }

    /// Removes and returns the profiler, disabling profiling.
    pub fn take_profiler(&mut self) -> Option<Profiler> {
        self.profiler.take()
    }

    /// Installs per-flit latency attribution: subsequent cycles track every
    /// packet's lifecycle spans and the spatial (per-link / per-router)
    /// accumulators behind the `inspect` artifacts.
    pub fn install_attribution(&mut self) {
        self.attribution = Some(Attribution::new(self.mesh.nodes()));
    }

    /// Whether attribution is currently installed.
    pub fn attribution_enabled(&self) -> bool {
        self.attribution.is_some()
    }

    /// Removes the attribution engine and folds its accumulators into
    /// renderable artifacts, disabling further attribution.
    pub fn take_attribution(&mut self) -> Option<AttributionArtifacts> {
        self.attribution.take().map(|a| a.finish(&self.mesh, self.now))
    }

    /// Installs a shared flight recorder; subsequent cycles feed the event
    /// ring. The handle is shared with the harness (it outlives a panicking
    /// run), so post-mortem bundles can read back the final moments.
    pub fn install_blackbox(&mut self, recorder: SharedRecorder) {
        self.blackbox = Some(recorder);
        self.traffic.set_txn_event_recording(true);
    }

    /// The installed flight recorder handle, if any.
    pub fn blackbox(&self) -> Option<&SharedRecorder> {
        self.blackbox.as_ref()
    }

    /// Removes and returns the flight recorder, disabling recording.
    pub fn take_blackbox(&mut self) -> Option<SharedRecorder> {
        if self.tracer.is_none() && self.journey.is_none() {
            self.traffic.set_txn_event_recording(false);
        }
        self.blackbox.take()
    }

    /// Installs `noc-journey` sampled per-packet journey tracing: one in
    /// `every` packets (and, for closed-loop workloads, one in `every`
    /// transactions) is selected by a pure hash of `(seed, id)` and its
    /// full hop-span timeline recorded. Journey tracing reads simulator
    /// state but never perturbs it, so cycle-domain results are identical
    /// with tracing on or off.
    pub fn install_journeys(&mut self, seed: u64, every: u64) {
        let n = self.mesh.nodes();
        let mut link_dest = vec![u16::MAX; n * DIRS];
        for r in 0..n {
            for dir in Port::DIRECTIONS {
                if let Some(d) = self.mesh.neighbor(r, dir) {
                    link_dest[r * DIRS + dir.index()] = d as u16;
                }
            }
        }
        self.journey =
            Some(JourneyTracker::new(self.traffic.name().to_owned(), seed, every, link_dest));
        self.traffic.set_txn_event_recording(true);
    }

    /// Whether journey tracing is currently installed.
    pub fn journeys_enabled(&self) -> bool {
        self.journey.is_some()
    }

    /// Removes the journey tracker and closes its log at the current
    /// cycle, disabling further journey tracing.
    pub fn take_journeys(&mut self) -> Option<JourneyLog> {
        if self.tracer.is_none() && self.blackbox.is_none() {
            self.traffic.set_txn_event_recording(false);
        }
        self.journey.take().map(|j| j.finish(self.now))
    }

    /// Records `event` when tracing is enabled; otherwise a single branch.
    /// Feeds the flight recorder's event ring on the same path, so the
    /// recorder sees exactly the tracer's event stream (post-filter sites,
    /// pre-ring-eviction).
    #[inline]
    fn trace(&mut self, event: Event) {
        if let Some(t) = self.tracer.as_mut() {
            t.record(event);
        }
        if let Some(bb) = self.blackbox.as_ref() {
            if let Ok(mut r) = bb.lock() {
                r.push_event(event);
            }
        }
    }

    /// Forwards the workload's buffered transaction-lifecycle events into
    /// the tracer/blackbox event stream. Only called when at least one sink
    /// is installed; the workload buffers nothing otherwise.
    fn drain_txn_events(&mut self) {
        let events = self.traffic.drain_txn_events();
        for ev in events {
            if let Some(j) = self.journey.as_mut() {
                j.on_txn_event(&ev);
            }
            let router = ev.node as u32;
            let peer = ev.peer as u32;
            let e = match ev.kind {
                TxnEventKind::Issued => {
                    Event::TxnIssued { cycle: ev.cycle, router, txn: ev.txn, peer }
                }
                TxnEventKind::Completed => {
                    Event::TxnCompleted { cycle: ev.cycle, router, txn: ev.txn, peer }
                }
                TxnEventKind::TimedOut => {
                    Event::TxnTimedOut { cycle: ev.cycle, router, txn: ev.txn, attempt: ev.attempt }
                }
                TxnEventKind::Retried => {
                    Event::TxnRetried { cycle: ev.cycle, router, txn: ev.txn, attempt: ev.attempt }
                }
                TxnEventKind::Failed => Event::TxnFailed { cycle: ev.cycle, router, txn: ev.txn },
                TxnEventKind::Shed => Event::TxnShed { cycle: ev.cycle, router, txn: ev.txn, peer },
            };
            self.trace(e);
        }
    }

    /// Per-node transaction accounting for closed-loop workloads; `None`
    /// for open-loop traffic.
    pub fn txn_stats(&self) -> Option<&TxnStats> {
        self.traffic.txn_stats()
    }

    /// Transaction ids missing from the workload's transaction table —
    /// non-empty means the conservation invariant is broken.
    pub fn txn_orphans(&self) -> Vec<u64> {
        self.traffic.txn_orphans()
    }

    /// Opens a profiling span when a profiler is installed; otherwise a
    /// single branch (the zero-cost disabled mode of `noc-prof`).
    #[inline]
    fn span_enter(&mut self, name: &'static str) {
        if let Some(p) = self.profiler.as_mut() {
            p.span_enter(name);
        }
    }

    /// Closes the innermost profiling span; single branch when disabled.
    #[inline]
    fn span_exit(&mut self) {
        if let Some(p) = self.profiler.as_mut() {
            p.span_exit();
        }
    }

    /// Charges cycle-domain counts to the innermost open span.
    #[inline]
    fn span_count(&mut self, flits: u64, allocs: u64) {
        if let Some(p) = self.profiler.as_mut() {
            p.span_count(flits, allocs);
        }
    }

    /// A timestamp for a leaf span, taken only when profiling is enabled —
    /// pair with [`Network::span_leaf`].
    #[inline]
    fn prof_now(&self) -> Option<Instant> {
        if self.profiler.is_some() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Records one completed leaf span under the current path, using a
    /// timestamp from [`Network::prof_now`]; no-op when profiling is off.
    #[inline]
    fn span_leaf(&mut self, name: &'static str, t0: Option<Instant>, flits: u64) {
        if let (Some(t0), Some(p)) = (t0, self.profiler.as_mut()) {
            p.span_leaf(name, t0.elapsed(), flits, 0);
        }
    }

    /// Samples link bit flips, charging the time to the `fault.inject`
    /// profile section (and leaf span) when profiling is enabled.
    #[inline]
    fn sample_flips(&mut self, bits: usize, re: f64) -> u32 {
        if self.profiler.is_none() {
            return self.injector.sample_flip_count(bits, re);
        }
        let t0 = Instant::now();
        let k = self.injector.sample_flip_count(bits, re);
        let elapsed = t0.elapsed();
        let prof = self.profiler.as_mut().expect("profiler checked above");
        prof.add("fault.inject", elapsed);
        prof.span_leaf("fault.inject", elapsed, 1, 0);
        k
    }

    /// Forces a fixed per-bit transient error rate (Fig. 17b sweep).
    pub fn set_error_rate_override(&mut self, rate: Option<f64>) {
        self.injector.set_rate_override(rate);
    }

    /// Whether every workload packet has been generated and either
    /// delivered or accounted as dropped.
    pub fn is_done(&self) -> bool {
        self.traffic.is_exhausted()
            && self.completed + self.stats.packets_dropped == self.stats.packets_injected
    }

    fn channel_index(&self, router: usize, dir: Port) -> usize {
        router * DIRS + dir.index()
    }

    /// The channel feeding input port `port` of router `r` (owned by the
    /// neighbor in that direction), if it exists.
    fn incoming_index(&self, r: usize, port: Port) -> Option<usize> {
        let up = self.mesh.neighbor(r, port)?;
        Some(self.channel_index(up, port.opposite()))
    }

    // ------------------------------------------------------------------
    // Phase 0: scheduled hard faults (fail-stop and intermittent)
    // ------------------------------------------------------------------

    /// The current link/router health map.
    pub fn health(&self) -> &HealthRouter {
        &self.health
    }

    /// The stall-watchdog diagnostic, if the run was aborted.
    pub fn stall(&self) -> Option<&StallReport> {
        self.stall.as_ref()
    }

    /// Applies scheduled hard-fault transitions at `self.now`. On any
    /// service-state edge the health map and route tables are rebuilt, and
    /// packets stranded on fail-stop-dead components are salvaged via
    /// end-to-end recovery or accounted as dropped. Intermittent outages
    /// only stall traffic: stored flits wait out the outage.
    fn apply_hard_faults(&mut self) {
        if self.cfg.hard_faults.is_empty() {
            return;
        }
        let now = self.now;
        let mut edges: Vec<(HardFaultTarget, bool)> = Vec::new();
        for (i, fault) in self.cfg.hard_faults.faults.iter().enumerate() {
            let down = fault.is_down(now);
            if down != self.fault_state[i] {
                self.fault_state[i] = down;
                edges.push((fault.target, down));
            }
        }
        if edges.is_empty() {
            return;
        }
        for (target, down) in edges {
            self.trace(match (target, down) {
                (HardFaultTarget::Link { router, dir }, true) => {
                    Event::LinkFailed { cycle: now, router, dir }
                }
                (HardFaultTarget::Link { router, dir }, false) => {
                    Event::LinkRepaired { cycle: now, router, dir }
                }
                (HardFaultTarget::Router { router }, true) => {
                    Event::RouterFailed { cycle: now, router }
                }
                (HardFaultTarget::Router { router }, false) => {
                    Event::RouterRepaired { cycle: now, router }
                }
            });
        }
        // Recompute the aggregate service state from scratch: faults can
        // overlap (e.g. a flapping link inside a dead router), so per-edge
        // incremental updates would be wrong.
        let n = self.mesh.nodes();
        let mut link_down = vec![false; n * DIRS];
        let mut router_down = vec![false; n];
        let mut fs_link_down = vec![false; n * DIRS];
        let mut fs_router_down = vec![false; n];
        for (i, fault) in self.cfg.hard_faults.faults.iter().enumerate() {
            if !self.fault_state[i] {
                continue;
            }
            let fail_stop = !fault.is_intermittent();
            match fault.target {
                HardFaultTarget::Link { router, dir } => {
                    let idx = router as usize * DIRS + dir as usize;
                    link_down[idx] = true;
                    fs_link_down[idx] = fs_link_down[idx] || fail_stop;
                }
                HardFaultTarget::Router { router } => {
                    router_down[router as usize] = true;
                    fs_router_down[router as usize] = fs_router_down[router as usize] || fail_stop;
                }
            }
        }
        // A physical link fails in both directions regardless of which
        // endpoint the scenario named.
        symmetrize_links(&self.mesh, &mut link_down);
        symmetrize_links(&self.mesh, &mut fs_link_down);
        for r in 0..n {
            self.health.set_router(r, !router_down[r]);
            for dir in [Port::XPlus, Port::YPlus] {
                self.health.set_link(r, dir, !link_down[r * DIRS + dir.index()]);
            }
        }
        self.health.rebuild();
        self.failstop_link_down = fs_link_down;
        self.failstop_router_down = fs_router_down;
        self.rebuild_fs_components();
        self.purge_after_fault();
    }

    /// Labels connected components of the fail-stop-surviving topology.
    fn rebuild_fs_components(&mut self) {
        let n = self.mesh.nodes();
        self.fs_comp = vec![u32::MAX; n];
        let mut next = 0u32;
        let mut queue = VecDeque::new();
        for start in 0..n {
            if self.fs_comp[start] != u32::MAX || self.failstop_router_down[start] {
                continue;
            }
            self.fs_comp[start] = next;
            queue.push_back(start);
            while let Some(u) = queue.pop_front() {
                for dir in Port::DIRECTIONS {
                    let Some(v) = self.mesh.neighbor(u, dir) else { continue };
                    if self.failstop_link_down[u * DIRS + dir.index()]
                        || self.failstop_router_down[v]
                        || self.fs_comp[v] != u32::MAX
                    {
                        continue;
                    }
                    self.fs_comp[v] = next;
                    queue.push_back(v);
                }
            }
            next += 1;
        }
    }

    /// Routes `here → dest` given the arrival port: health-aware detour
    /// routing when `fault_aware_routing` is enabled, plain XY otherwise
    /// (in which case traffic blocked by a dead link waits until the stall
    /// watchdog aborts the run).
    fn route_via(&self, here: usize, dest: usize, in_port: Port) -> Option<Port> {
        if self.cfg.fault_aware_routing {
            self.health.route(here, dest, in_port)
        } else {
            Some(self.mesh.xy_route(here, dest))
        }
    }

    /// Whether a packet at router `at` can never reach `dest` again:
    /// either endpoint is fail-stop dead or they sit in different
    /// fail-stop-surviving components. Intermittent outages do not count.
    fn fs_split(&self, at: usize, dest: usize) -> bool {
        self.failstop_router_down[at]
            || self.failstop_router_down[dest]
            || self.fs_comp[at] != self.fs_comp[dest]
    }

    /// Finds every packet disturbed by a health-map transition and salvages
    /// or drops it: flits stranded on a fail-stop-dead component (or bound
    /// for a dead destination), plus — under fault-aware routing — packets
    /// whose head is parked at a position the rebuilt up*/down* table cannot
    /// continue from. Iteration is in deterministic packet-id order.
    fn purge_after_fault(&mut self) {
        let n = self.mesh.nodes();
        let any_failstop = self.failstop_link_down.iter().any(|&d| d)
            || self.failstop_router_down.iter().any(|&d| d);
        let mut disturbed: BTreeMap<u64, Flit> = BTreeMap::new();
        if any_failstop {
            // Channel-resident flits on a dead link or feeding a dead router.
            for u in 0..n {
                for dir in Port::DIRECTIONS {
                    let ci = self.channel_index(u, dir);
                    let Some(ch) = self.channels[ci].as_ref() else { continue };
                    let v = self.mesh.neighbor(u, dir).expect("channel implies neighbor");
                    let dead_path = self.failstop_link_down[ci]
                        || self.failstop_router_down[u]
                        || self.failstop_router_down[v];
                    for i in 0..ch.occupancy() {
                        let f = *ch.get(i);
                        if dead_path || self.fs_split(v, f.dest as usize) {
                            disturbed.entry(f.packet_id).or_insert(f);
                        }
                    }
                }
            }
            // VC-resident flits: dead router, dead bound output, or dead dest.
            for r in 0..n {
                let router_dead = self.failstop_router_down[r];
                for port in self.routers[r].inputs() {
                    for vc in port.vcs() {
                        let route = vc.route();
                        let route_dead = route != Port::Local
                            && (self.failstop_link_down[r * DIRS + route.index()]
                                || self
                                    .mesh
                                    .neighbor(r, route)
                                    .map(|nb| self.failstop_router_down[nb])
                                    .unwrap_or(false));
                        for f in vc.flits() {
                            if router_dead
                                || (route_dead && vc.packet() == Some(f.packet_id))
                                || self.fs_split(r, f.dest as usize)
                            {
                                disturbed.entry(f.packet_id).or_insert(*f);
                            }
                        }
                    }
                }
            }
            // NI injection queues: dead source or dead destination.
            for r in 0..n {
                let ni_dead = self.failstop_router_down[r];
                for f in &self.nis[r].inject {
                    if ni_dead || self.fs_split(r, f.dest as usize) {
                        disturbed.entry(f.packet_id).or_insert(*f);
                    }
                }
            }
            // Partial reassembly state dies with a destination router.
            for r in 0..n {
                if self.failstop_router_down[r] {
                    self.nis[r].recv.clear();
                }
            }
        }
        // A rebuild invalidates routes computed under the previous topology.
        // The up*/down* table only guarantees progress from legal states; a
        // packet caught mid-path by the transition can sit at a (node,
        // arrival-port) pair the new table has no continuation for — it
        // would wait forever and leak its downstream VC reservation. Rebind
        // parked heads that still have a legal continuation; salvage the
        // phase-stranded rest. Targets inside an intermittent outage are
        // skipped here and re-swept at the repair edge.
        if self.cfg.fault_aware_routing {
            for u in 0..n {
                for dir in Port::DIRECTIONS {
                    let ci = self.channel_index(u, dir);
                    let Some(ch) = self.channels[ci].as_ref() else { continue };
                    if !self.health.usable(u, dir) {
                        continue;
                    }
                    let v = self.mesh.neighbor(u, dir).expect("channel implies neighbor");
                    for i in 0..ch.occupancy() {
                        let f = *ch.get(i);
                        if f.is_head()
                            && self.health.route(v, f.dest as usize, dir.opposite()).is_none()
                        {
                            disturbed.entry(f.packet_id).or_insert(f);
                        }
                    }
                }
            }
            let mut rebinds: Vec<(usize, usize, usize, Port)> = Vec::new();
            for r in 0..n {
                if !self.health.router_up(r) {
                    continue;
                }
                for (p, port) in self.routers[r].inputs().iter().enumerate() {
                    for (vi, vc) in port.vcs().iter().enumerate() {
                        let Some(head) = vc.flits().next().copied() else { continue };
                        if vc.packet() != Some(head.packet_id) || !head.is_head() {
                            continue; // body flits must follow their head's path
                        }
                        match self.health.route(r, head.dest as usize, Port::from_index(p)) {
                            None => {
                                disturbed.entry(head.packet_id).or_insert(head);
                            }
                            Some(route) if route != vc.route() => {
                                rebinds.push((r, p, vi, route));
                            }
                            Some(_) => {}
                        }
                    }
                }
            }
            for (r, p, vi, route) in rebinds {
                self.routers[r].input_mut(p).vc_mut(vi).rebind_route(route);
            }
        }
        for (_, f) in disturbed {
            self.salvage_or_drop(f);
        }
    }

    /// Removes every in-flight flit of `packet` from channels, input VCs,
    /// NI injection queues, and reassembly buffers.
    fn purge_packet(&mut self, packet: u64) {
        for ch in self.channels.iter_mut().flatten() {
            ch.purge_packet(packet);
        }
        for router in &mut self.routers {
            router.purge_packet(packet);
        }
        for ni in &mut self.nis {
            ni.inject.retain(|f| f.packet_id != packet);
            ni.recv.remove(&packet);
        }
    }

    /// End-to-end recovery for a packet disturbed by a hard fault or out of
    /// hop-retry budget: purges its in-flight flits, then re-injects it
    /// from the source NI with a bumped generation — or, when the budget is
    /// exhausted or no route survives, accounts it as dropped.
    fn salvage_or_drop(&mut self, f: Flit) {
        self.purge_packet(f.packet_id);
        if self.dropped_ids.contains(&f.packet_id) {
            return;
        }
        let src = f.src as usize;
        let budget_ok = self.cfg.max_retx == 0 || u32::from(f.generation) < self.cfg.max_retx;
        // Intermittent outages don't disqualify a salvage: the re-injected
        // packet simply waits them out in the source NI queue.
        let routable = !self.fs_split(src, f.dest as usize);
        if budget_ok && routable {
            self.stats.e2e_retx_packets += 1;
            self.stats.retransmitted_flits += crate::flit::FLITS_PER_PACKET as u64;
            self.trace(Event::Retransmission {
                cycle: self.now,
                router: src as u32,
                packet: f.packet_id,
                scope: RetxScope::E2e,
            });
            let mut flits =
                make_packet(f.packet_id, self.next_flit_id, f.src, f.dest, f.injected_at);
            self.next_flit_id += crate::flit::FLITS_PER_PACKET as u64;
            for nf in &mut flits {
                nf.generation = f.generation + 1;
            }
            self.routers[src].counters.crc_ops += crate::flit::FLITS_PER_PACKET as u64;
            self.routers[src].counters.retransmitted_flits += crate::flit::FLITS_PER_PACKET as u64;
            self.nis[src].inject.extend(flits);
            if let Some(att) = self.attribution.as_mut() {
                att.on_e2e_retx(f.packet_id, self.now);
            }
            if let Some(j) = self.journey.as_mut() {
                j.on_e2e_retx(f.packet_id, self.now);
            }
        } else {
            self.account_drop(&f);
        }
    }

    /// Accounts a packet as permanently lost. Idempotent per packet id.
    fn account_drop(&mut self, f: &Flit) {
        if !self.dropped_ids.insert(f.packet_id) {
            return;
        }
        if let Some(att) = self.attribution.as_mut() {
            att.on_drop(f.packet_id);
        }
        if let Some(j) = self.journey.as_mut() {
            j.on_drop(f.packet_id);
        }
        let src = f.src as usize;
        self.stats.packets_dropped += 1;
        self.outstanding[src] = self.outstanding[src].saturating_sub(1);
        self.trace(Event::PacketDropped {
            cycle: self.now,
            router: u32::from(f.src),
            packet: f.packet_id,
            bits: u32::from(f.generation),
        });
        self.traffic.on_dropped(self.now, f.packet_id);
    }

    /// Checks forward progress and arms the stall diagnostic when none was
    /// made for a full watchdog window while packets are in flight.
    fn watchdog_check(&mut self) -> bool {
        if self.cfg.stall_window == 0 {
            return false;
        }
        let score = self.stats.packets_delivered + self.stats.packets_dropped;
        let in_flight = self
            .stats
            .packets_injected
            .saturating_sub(self.stats.packets_delivered + self.stats.packets_dropped);
        if score != self.last_score || in_flight == 0 {
            self.last_score = score;
            self.last_progress = self.now;
            return false;
        }
        if self.now.saturating_sub(self.last_progress) < self.cfg.stall_window {
            return false;
        }
        self.trace(Event::WatchdogStall { cycle: self.now, router: 0, state: in_flight });
        self.stall = Some(StallReport {
            cycle: self.now,
            window: self.cfg.stall_window,
            in_flight,
            blocked: self.snapshot_blocked(16).lines().map(String::from).collect(),
            dump: self.snapshot_dump(),
        });
        true
    }

    // ------------------------------------------------------------------
    // Phase 1: router internal movement
    // ------------------------------------------------------------------

    fn sa_phase(&mut self, r: usize) {
        let now = self.now;
        let scheme = self.routers[r].directive.scheme;
        let per_hop = scheme.is_per_hop();
        let sa_base = self.routers[r].sa_rr;
        let mut granted_inputs = [false; PORTS];
        for k in 0..PORTS {
            let out_idx = (sa_base + k) % PORTS;
            let out_port = Port::from_index(out_idx);
            let ch_idx = if out_port == Port::Local {
                None
            } else if !self.health.usable(r, out_port) {
                continue; // dead link or dead downstream router: flits wait
            } else {
                match &self.channels[self.channel_index(r, out_port)] {
                    Some(ch) if ch.has_space() => Some(self.channel_index(r, out_port)),
                    _ => continue, // boundary or full channel
                }
            };
            let downstream =
                if out_port == Port::Local { None } else { self.mesh.neighbor(r, out_port) };
            // A downstream router accepting reservations: powered and not
            // draining toward a proactive gate.
            let down_reservable = downstream
                .map(|v| self.routers[v].is_on() && !self.routers[v].gate_pending)
                .unwrap_or(false);
            // Find a candidate (input port, vc) in round-robin order. Head
            // flits toward a powered downstream must win VC allocation (VA)
            // for a downstream input VC; bodies inherit their head's.
            let mut grant: Option<(usize, usize, u8, u64, bool)> = None;
            'search: for pk in 0..PORTS {
                let p = (sa_base + pk) % PORTS;
                if granted_inputs[p] {
                    continue;
                }
                for (v, vc) in self.routers[r].inputs()[p].vcs().iter().enumerate() {
                    if vc.route() != out_port {
                        continue;
                    }
                    let Some(flit) = vc.sa_candidate(now) else { continue };
                    let dvc = if out_port == Port::Local {
                        NO_VC
                    } else if flit.is_head() {
                        if down_reservable {
                            let dv = downstream.expect("non-local output");
                            let in_port = out_port.opposite().index();
                            match self.routers[dv].inputs()[in_port]
                                .vcs()
                                .iter()
                                .position(InputVc::available)
                            {
                                Some(slot) => slot as u8,
                                None => continue, // VA failed: no free VC
                            }
                        } else {
                            NO_VC
                        }
                    } else {
                        vc.out_vc()
                    };
                    grant = Some((p, v, dvc, flit.packet_id, flit.is_head()));
                    break 'search;
                }
            }
            let Some((p, v, dvc, packet_id, is_head)) = grant else { continue };
            granted_inputs[p] = true;
            if let Some(prof) = self.profiler.as_mut() {
                prof.phases.sa += 1; // switch allocation granted
                prof.phases.st += 1; // the grant traverses the crossbar
                if is_head && dvc != NO_VC {
                    prof.phases.va += 1; // head won a downstream VC
                }
                // Span counting hook: one flit granted; a downstream VC
                // reservation counts as an allocation.
                prof.span_count(1, u64::from(is_head && dvc != NO_VC));
            }
            // Commit the downstream VC reservation for head flits.
            if is_head && dvc != NO_VC {
                let dv = downstream.expect("non-local output");
                let in_port = out_port.opposite().index();
                self.routers[dv].input_mut(in_port).vc_mut(dvc as usize).reserve(packet_id);
            }
            let router = &mut self.routers[r];
            let mut flit = router.input_mut(p).vc_mut(v).pop_granted(now);
            if is_head {
                router.input_mut(p).vc_mut(v).set_out_vc(dvc);
            }
            flit.vc = dvc;
            router.counters.buffer_reads += 1;
            router.counters.xbar_traversals += 1;
            router.counters.alloc_ops += 1;
            router.step.out_flits[out_idx] += 1;
            if let Some(ci) = ch_idx {
                flit.hop_scheme = if per_hop { scheme } else { EccScheme::None };
                let router = &mut self.routers[r];
                router.counters.link_flits += 1;
                if per_hop {
                    router.counters.count_ecc_op(scheme); // encode
                }
                if self.cfg.channel_capacity > 0 {
                    router.counters.channel_stage_ops += 1;
                }
                let cost = self.channels[ci].as_ref().expect("channel exists").latency();
                if let Some(att) = self.attribution.as_mut() {
                    att.on_link_flit(ci, &flit, cost, false);
                }
                if let Some(j) = self.journey.as_mut() {
                    j.on_link_flit(ci, &flit, cost, false, now);
                }
                self.channels[ci].as_mut().expect("channel exists").push(flit, now);
            } else {
                self.eject(r, flit);
            }
        }
        self.routers[r].sa_rr = (sa_base + 1) % PORTS;
    }

    fn bypass_phase(&mut self, r: usize) {
        let now = self.now;
        let mut out_used = [false; PORTS];
        let rr = self.routers[r].bypass_rr;
        // The bypass is a simple single-flit latch switch (paper §3.3): it
        // forwards at most ONE flit per cycle, round-robin over the inputs.
        // That serialization is the throughput price of power gating.
        let mut forwarded = false;
        // Inputs 0..4 are incoming direction channels; input 4 is the NI.
        for k in 0..PORTS {
            if forwarded {
                break;
            }
            let i = (rr + k) % PORTS;
            let (dest, is_ni) = if i < DIRS {
                let Some(ci) = self.incoming_index(r, Port::from_index(i)) else { continue };
                let Some(ch) = &self.channels[ci] else { continue };
                match ch.peek_ready(now) {
                    Some(f) => (f.dest as usize, false),
                    None => continue,
                }
            } else {
                match self.nis[r].inject.front() {
                    Some(f) => (f.dest as usize, true),
                    None => continue,
                }
            };
            let in_port = if is_ni { Port::Local } else { Port::from_index(i) };
            let Some(route) = self.route_via(r, dest, in_port) else {
                continue; // no live route right now: the flit waits
            };
            if out_used[route.index()] {
                continue;
            }
            // Without the crossbar, the bypass can only continue straight
            // ahead or eject (paper §3.3 / Fig. 6); a turning flit must wait
            // for the router to wake (see gating phase).
            if !is_ni && route != Port::Local && route != Port::from_index(i).opposite() {
                continue;
            }
            if route == Port::Local {
                let flit = if is_ni {
                    Some(self.nis[r].inject.pop_front().expect("checked nonempty"))
                } else {
                    self.bypass_eject_consume(r, i)
                };
                let Some(flit) = flit else { continue };
                out_used[Port::Local.index()] = true;
                self.routers[r].step.in_flits[i.min(PORTS - 1)] += 1;
                self.eject(r, flit);
            } else {
                if !self.health.usable(r, route) {
                    continue; // outage on the outgoing link: wait it out
                }
                let out_ci = self.channel_index(r, route);
                let ok = matches!(&self.channels[out_ci], Some(ch) if ch.has_space());
                if !ok {
                    continue;
                }
                let flit = if is_ni {
                    // Locally injected flits enter the mesh unencoded; they
                    // pick up per-hop protection at the first powered router.
                    let mut f = self.nis[r].inject.pop_front().expect("checked nonempty");
                    f.hop_scheme = EccScheme::None;
                    f
                } else {
                    // Forward the still-encoded codeword unchanged.
                    self.bypass_consume(r, i)
                };
                out_used[route.index()] = true;
                forwarded = true;
                let router = &mut self.routers[r];
                router.step.in_flits[i.min(PORTS - 1)] += 1;
                router.step.out_flits[route.index()] += 1;
                router.counters.link_flits += 1;
                router.counters.channel_stage_ops += 1;
                let cost = self.channels[out_ci].as_ref().expect("checked").latency() + 1;
                if let Some(att) = self.attribution.as_mut() {
                    att.on_link_flit(out_ci, &flit, cost, true);
                }
                if let Some(j) = self.journey.as_mut() {
                    j.on_link_flit(out_ci, &flit, cost, true, now);
                }
                // The bypass mux/latch adds one cycle on top of the link.
                self.channels[out_ci].as_mut().expect("checked").push_delayed(flit, now, 1);
            }
        }
        self.routers[r].bypass_rr = (rr + 1) % PORTS;
    }

    /// Consumes the ready head flit of the incoming channel on direction
    /// port `i` of gated router `r`, sampling link faults with no decoding
    /// (the gated router's ECC hardware is off, so flips accumulate toward
    /// the end-to-end check).
    fn bypass_consume(&mut self, r: usize, i: usize) -> Flit {
        let now = self.now;
        let port = Port::from_index(i);
        let up = self.mesh.neighbor(r, port).expect("incoming channel exists");
        let ci = self.incoming_index(r, port).expect("incoming channel exists");
        let mut flit = {
            let ch = self.channels[ci].as_mut().expect("channel exists");
            ch.pop_ready(now)
        };
        let relaxed = self.channels[ci].as_ref().map(|c| c.relaxed).unwrap_or(false);
        let base = self.re[up];
        let re = if relaxed { (base * base).max(1e-300) } else { base };
        let bits = self.traversal_bits(&flit);
        let k = self.sample_flips(bits, re);
        if k > 0 {
            self.stats.faulty_traversals += 1;
            if flit.hop_scheme.is_per_hop() {
                // The gated router's decoder is off: corruption rides the
                // still-encoded codeword until the next powered router.
                flit.hop_flips = flit.hop_flips.saturating_add(k as u16);
            } else {
                flit.e2e_flips = flit.e2e_flips.saturating_add(k as u16);
            }
        }
        self.routers[up].step.error_hist[(k as usize).min(3)] += 1;
        flit.hops += 1;
        self.trace(Event::HopTraversed {
            cycle: now,
            router: r as u32,
            packet: flit.packet_id,
            flit: flit.id,
        });
        flit
    }

    /// Like [`Network::bypass_consume`], but for flits being ejected at the
    /// gated router's own node: the destination NI *does* decode the per-hop
    /// codeword (it must recover the data to consume it), so uncorrectable
    /// corruption triggers a per-hop re-transmission instead of silently
    /// reaching the core. Returns `None` when the flit was NACKed.
    fn bypass_eject_consume(&mut self, r: usize, i: usize) -> Option<Flit> {
        let now = self.now;
        let port = Port::from_index(i);
        let up = self.mesh.neighbor(r, port).expect("incoming channel exists");
        let ci = self.incoming_index(r, port).expect("incoming channel exists");
        let head = *self.channels[ci].as_ref().expect("channel exists").peek_ready(now)?;
        let relaxed = self.channels[ci].as_ref().map(|c| c.relaxed).unwrap_or(false);
        let base = self.re[up];
        let re = if relaxed { (base * base).max(1e-300) } else { base };
        let bits = self.traversal_bits(&head);
        let k_link = self.sample_flips(bits, re);
        if k_link > 0 {
            self.stats.faulty_traversals += 1;
        }
        self.routers[up].step.error_hist[(k_link as usize).min(3)] += 1;
        let k = k_link + head.hop_flips as u32;
        let mut extra_flips = 0u16;
        if k > 0 && head.hop_scheme.is_per_hop() {
            let scheme = head.hop_scheme;
            let payload = head.payload();
            let mut cw = self.suite.encode(scheme, payload);
            let k = k.min(bits as u32);
            for pos in self.injector.choose_positions(bits, k) {
                cw.flip_bit(pos);
            }
            let (data, status) = self.suite.decode(scheme, &cw);
            match status {
                DecodeStatus::Clean => extra_flips = k as u16,
                DecodeStatus::Corrected(_) => {
                    if data == payload {
                        self.stats.corrected_bits += k as u64;
                        self.trace(Event::EccCorrected {
                            cycle: now,
                            router: r as u32,
                            packet: head.packet_id,
                            bits: k,
                        });
                        if let Some(j) = self.journey.as_mut() {
                            j.on_ecc_corrected(head.packet_id, r as u16, now);
                        }
                    } else {
                        extra_flips = k as u16;
                    }
                }
                DecodeStatus::Detected => {
                    if self.cfg.max_retx > 0 && u32::from(head.retx) >= self.cfg.max_retx {
                        // Hop-retry budget exhausted: escalate to
                        // end-to-end recovery (or an accounted drop).
                        self.salvage_or_drop(head);
                        return None;
                    }
                    self.channels[ci].as_mut().expect("channel exists").delay_at(
                        0,
                        now,
                        self.cfg.retx_latency as u64,
                    );
                    if let Some(att) = self.attribution.as_mut() {
                        att.on_hop_retx(ci, &head, self.cfg.retx_latency as u64);
                    }
                    if let Some(j) = self.journey.as_mut() {
                        j.on_hop_retx(ci, &head, self.cfg.retx_latency as u64, now);
                    }
                    self.stats.hop_retx_events += 1;
                    self.stats.retransmitted_flits += 1;
                    self.trace(Event::Retransmission {
                        cycle: now,
                        router: r as u32,
                        packet: head.packet_id,
                        scope: RetxScope::Hop,
                    });
                    let upr = &mut self.routers[up];
                    upr.step.retransmissions += 1;
                    upr.counters.retransmitted_flits += 1;
                    upr.counters.link_flits += 1;
                    upr.counters.count_ecc_op(scheme);
                    return None;
                }
            }
            let mut flit = self.channels[ci].as_mut().expect("channel exists").pop_ready(now);
            flit.e2e_flips = flit.e2e_flips.saturating_add(extra_flips);
            flit.hop_flips = 0;
            flit.hops += 1;
            self.routers[r].counters.count_ecc_op(scheme); // NI-side decode
            self.trace(Event::HopTraversed {
                cycle: now,
                router: r as u32,
                packet: flit.packet_id,
                flit: flit.id,
            });
            return Some(flit);
        }
        let mut flit = self.channels[ci].as_mut().expect("channel exists").pop_ready(now);
        if k > 0 {
            // Unprotected traversal: corruption flows to the e2e check.
            flit.e2e_flips = flit.e2e_flips.saturating_add(k as u16);
            flit.hop_flips = 0;
        }
        flit.hops += 1;
        self.trace(Event::HopTraversed {
            cycle: now,
            router: r as u32,
            packet: flit.packet_id,
            flit: flit.id,
        });
        Some(flit)
    }

    /// Number of physical bits on the wire for this flit's traversal.
    fn traversal_bits(&self, flit: &Flit) -> usize {
        if flit.hop_scheme.is_per_hop() {
            flit.hop_scheme.codeword_bits()
        } else if self.cfg.e2e_crc {
            EccScheme::Crc.codeword_bits()
        } else {
            128
        }
    }

    // ------------------------------------------------------------------
    // Phase 2: deliveries into powered routers
    // ------------------------------------------------------------------

    fn delivery_phase(&mut self) {
        let now = self.now;
        for u in 0..self.mesh.nodes() {
            for dir in Port::DIRECTIONS {
                let Some(v) = self.mesh.neighbor(u, dir) else { continue };
                if !self.health.usable(u, dir) {
                    continue; // link or endpoint outage: stored flits wait
                }
                if !self.routers[v].is_on() {
                    continue; // bypass (phase 1) handles gated routers
                }
                let pending = self.routers[v].gate_pending;
                let ci = self.channel_index(u, dir);
                let in_port = dir.opposite().index();
                // Scan channel storage for the first deliverable flit
                // (order-preserving per packet — the BST dynamic buffer
                // allocation of §3.1.2).
                let idx = {
                    let channels_view = &self.channels;
                    let health = &self.health;
                    let mesh = self.mesh;
                    let fault_aware = self.cfg.fault_aware_routing;
                    let Some(ch) = channels_view[ci].as_ref() else { continue };
                    let port = &self.routers[v].inputs()[in_port];
                    let continuation_ok = |flit: &Flit| {
                        let route = if fault_aware {
                            health.route(v, flit.dest as usize, dir.opposite())
                        } else {
                            Some(mesh.xy_route(v, flit.dest as usize))
                        };
                        match route {
                            Some(Port::Local) => true,
                            Some(out) => matches!(
                                &channels_view[v * DIRS + out.index()],
                                Some(ch) if ch.has_space() && health.usable(v, out)
                            ),
                            None => false, // no live route: wait
                        }
                    };
                    ch.scan_deliverable(now, |flit| {
                        if flit.is_head() {
                            if flit.vc != NO_VC {
                                port.vcs()[flit.vc as usize].is_reserved_for(flit.packet_id)
                            } else {
                                // Unreserved head (granted while this router
                                // was gated): bind a free VC, or — to keep
                                // the channel from wedging on VC exhaustion —
                                // ride the BST continuation latch onward.
                                // While draining toward a proactive gate only
                                // the continuation path is allowed.
                                let can_bind =
                                    !pending && port.vcs().iter().any(InputVc::available);
                                can_bind || continuation_ok(flit)
                            }
                        } else if port.vcs().iter().any(|vc| vc.packet() == Some(flit.packet_id)) {
                            port.vcs()
                                .iter()
                                .any(|vc| vc.packet() == Some(flit.packet_id) && vc.has_space())
                        } else {
                            // BST continuation (§3.1.2): the head passed this
                            // router while it was gated (bypass), so no VC is
                            // bound; the BST still holds the packet's route,
                            // and the body follows latch-to-channel.
                            continuation_ok(flit)
                        }
                    })
                };
                let Some(idx) = idx else { continue };
                let head = *self.channels[ci].as_ref().expect("channel exists").get(idx);
                // Route at the receiving router, around any hard faults.
                // Heads (and BST continuations) need a live route now; a
                // temporarily unreachable destination (intermittent outage)
                // leaves them waiting on the channel. Body/tail flits bound
                // to a VC follow the path their head already took, so a
                // missing route must not block them.
                let bound_body = !head.is_head()
                    && self.routers[v].inputs()[in_port]
                        .vcs()
                        .iter()
                        .any(|vc| vc.packet() == Some(head.packet_id));
                let t_rc = self.prof_now();
                let routed = self.route_via(v, head.dest as usize, dir.opposite());
                self.span_leaf("route.compute", t_rc, 0);
                let route = match routed {
                    Some(route) => route,
                    None if bound_body => Port::Local, // unused: follows the VC binding
                    None => continue,
                };
                // The flit physically traverses the link now: sample faults.
                let scheme = head.hop_scheme;
                let re = {
                    let base = self.re[u];
                    let relaxed = self.channels[ci].as_ref().map(|c| c.relaxed).unwrap_or(false);
                    if relaxed {
                        (base * base).max(1e-300)
                    } else {
                        base
                    }
                };
                let bits = self.traversal_bits(&head);
                let k_link = self.sample_flips(bits, re);
                let bucket = (k_link as usize).min(3);
                self.routers[u].step.error_hist[bucket] += 1;
                if k_link > 0 {
                    self.stats.faulty_traversals += 1;
                }
                // Corruption accumulated while bypassing gated routers is
                // still in the codeword and decodes here.
                let k = k_link + head.hop_flips as u32;
                let mut extra_flips = 0u16;
                if k > 0 {
                    if scheme.is_per_hop() {
                        let payload = head.payload();
                        let t_enc = self.prof_now();
                        let mut cw = self.suite.encode(scheme, payload);
                        self.span_leaf("ecc.encode", t_enc, 1);
                        let k = k.min(bits as u32);
                        for pos in self.injector.choose_positions(bits, k) {
                            cw.flip_bit(pos);
                        }
                        let t_dec = self.prof_now();
                        let (data, status) = self.suite.decode(scheme, &cw);
                        self.span_leaf("ecc.decode", t_dec, 1);
                        match status {
                            DecodeStatus::Clean => extra_flips = k as u16,
                            DecodeStatus::Corrected(_) => {
                                if data == payload {
                                    self.stats.corrected_bits += k as u64;
                                    self.trace(Event::EccCorrected {
                                        cycle: now,
                                        router: v as u32,
                                        packet: head.packet_id,
                                        bits: k,
                                    });
                                    if let Some(j) = self.journey.as_mut() {
                                        j.on_ecc_corrected(head.packet_id, v as u16, now);
                                    }
                                } else {
                                    extra_flips = k as u16;
                                }
                            }
                            DecodeStatus::Detected => {
                                let t_retx = self.prof_now();
                                if self.cfg.max_retx > 0
                                    && u32::from(head.retx) >= self.cfg.max_retx
                                {
                                    // Hop-retry budget exhausted: escalate to
                                    // end-to-end recovery (or accounted drop).
                                    self.salvage_or_drop(head);
                                    self.span_leaf("retx.ladder", t_retx, 1);
                                    continue;
                                }
                                // NACK: the stored copy re-traverses the link.
                                self.channels[ci].as_mut().expect("channel exists").delay_at(
                                    idx,
                                    now,
                                    self.cfg.retx_latency as u64,
                                );
                                if let Some(att) = self.attribution.as_mut() {
                                    att.on_hop_retx(ci, &head, self.cfg.retx_latency as u64);
                                }
                                if let Some(j) = self.journey.as_mut() {
                                    j.on_hop_retx(ci, &head, self.cfg.retx_latency as u64, now);
                                }
                                self.stats.hop_retx_events += 1;
                                self.stats.retransmitted_flits += 1;
                                self.trace(Event::Retransmission {
                                    cycle: now,
                                    router: v as u32,
                                    packet: head.packet_id,
                                    scope: RetxScope::Hop,
                                });
                                let up = &mut self.routers[u];
                                up.step.retransmissions += 1;
                                up.counters.retransmitted_flits += 1;
                                up.counters.link_flits += 1;
                                up.counters.count_ecc_op(scheme); // re-encode
                                if self.cfg.mfac_retx {
                                    up.counters.channel_stage_ops += 1;
                                } else {
                                    up.counters.buffer_reads += 1;
                                }
                                self.span_leaf("retx.ladder", t_retx, 1);
                                continue;
                            }
                        }
                    } else {
                        extra_flips = k as u16;
                    }
                }
                // Deliver.
                let mut flit = self.channels[ci].as_mut().expect("channel exists").remove_at(idx);
                flit.e2e_flips = flit.e2e_flips.saturating_add(extra_flips);
                flit.hop_flips = 0; // decoded (and re-encoded at next output)
                flit.hops += 1;
                self.trace(Event::HopTraversed {
                    cycle: now,
                    router: v as u32,
                    packet: flit.packet_id,
                    flit: flit.id,
                });
                if flit.is_head() {
                    if let Some(prof) = self.profiler.as_mut() {
                        prof.phases.rc += 1; // route computed for a new packet
                    }
                    let xy = self.mesh.xy_route(v, flit.dest as usize);
                    if route != xy {
                        self.stats.reroutes += 1;
                        self.trace(Event::Rerouted {
                            cycle: now,
                            router: v as u32,
                            packet: flit.packet_id,
                            from: xy.index() as u8,
                            to: route.index() as u8,
                        });
                        if let Some(j) = self.journey.as_mut() {
                            j.on_reroute(flit.packet_id, v as u16, now);
                        }
                    }
                }
                let ready = now + if flit.is_head() { self.cfg.pipeline_latency as u64 } else { 1 };
                let vc = if flit.is_head() {
                    if flit.vc != NO_VC {
                        Some(flit.vc as usize)
                    } else if self.routers[v].gate_pending {
                        None // continuation only while draining toward a gate
                    } else {
                        self.routers[v].inputs()[in_port].vcs().iter().position(InputVc::available)
                    }
                } else {
                    self.routers[v].inputs()[in_port]
                        .vcs()
                        .iter()
                        .position(|vcs| vcs.packet() == Some(flit.packet_id))
                };
                {
                    let router = &mut self.routers[v];
                    if scheme.is_per_hop() {
                        router.counters.count_ecc_op(scheme); // decode
                    }
                    router.step.in_flits[in_port] += 1;
                }
                match vc {
                    Some(vc) => {
                        if flit.is_head() {
                            if let Some(att) = self.attribution.as_mut() {
                                att.on_pipeline(flit.packet_id, self.cfg.pipeline_latency as u64);
                            }
                            if let Some(j) = self.journey.as_mut() {
                                j.on_pipeline(
                                    flit.packet_id,
                                    v as u16,
                                    self.cfg.pipeline_latency as u64,
                                    now,
                                );
                            }
                        }
                        let router = &mut self.routers[v];
                        router.counters.buffer_writes += 1;
                        router.input_mut(in_port).enqueue(vc, flit, route, ready);
                        self.span_count(1, 1); // buffered into an input VC
                    }
                    None => {
                        // BST continuation: forward latch-to-channel.
                        flit.vc = NO_VC;
                        if route == Port::Local {
                            self.eject(v, flit);
                        } else {
                            flit.hop_scheme = EccScheme::None;
                            let out_ci = self.channel_index(v, route);
                            let router = &mut self.routers[v];
                            router.step.out_flits[route.index()] += 1;
                            router.counters.link_flits += 1;
                            router.counters.channel_stage_ops += 1;
                            let cost = self.channels[out_ci]
                                .as_ref()
                                .expect("route stays on the mesh")
                                .latency();
                            if let Some(att) = self.attribution.as_mut() {
                                att.on_link_flit(out_ci, &flit, cost, false);
                            }
                            if let Some(j) = self.journey.as_mut() {
                                j.on_link_flit(out_ci, &flit, cost, false, now);
                            }
                            self.channels[out_ci]
                                .as_mut()
                                .expect("route stays on the mesh")
                                .push(flit, now);
                            self.span_count(1, 0); // latch-to-channel, no buffer
                        }
                    }
                }
            }
        }
        // NI injection into powered local ports (one flit per cycle).
        for r in 0..self.mesh.nodes() {
            if !self.routers[r].is_on() {
                continue;
            }
            let Some(head) = self.nis[r].inject.front().copied() else { continue };
            if self.routers[r].gate_pending && head.is_head() {
                continue; // draining toward a proactive gate
            }
            let in_port = Port::Local.index();
            let bound = self.routers[r].inputs()[in_port]
                .vcs()
                .iter()
                .any(|vc| vc.packet() == Some(head.packet_id));
            if !head.is_head() && !bound {
                // BST continuation: the packet's head was injected through
                // the bypass while the router was gated.
                let t_rc = self.prof_now();
                let routed = self.route_via(r, head.dest as usize, Port::Local);
                self.span_leaf("route.compute", t_rc, 0);
                let Some(route) = routed else {
                    continue; // no live route right now: wait in the NI
                };
                if route == Port::Local || !self.health.usable(r, route) {
                    continue;
                }
                let out_ci = self.channel_index(r, route);
                let ok = matches!(&self.channels[out_ci], Some(ch) if ch.has_space());
                if ok {
                    let mut flit = self.nis[r].inject.pop_front().expect("checked nonempty");
                    flit.hop_scheme = EccScheme::None;
                    flit.vc = NO_VC;
                    let router = &mut self.routers[r];
                    router.step.out_flits[route.index()] += 1;
                    router.counters.link_flits += 1;
                    router.counters.channel_stage_ops += 1;
                    let cost =
                        self.channels[out_ci].as_ref().expect("route stays on the mesh").latency();
                    if let Some(att) = self.attribution.as_mut() {
                        att.on_link_flit(out_ci, &flit, cost, false);
                    }
                    if let Some(j) = self.journey.as_mut() {
                        j.on_link_flit(out_ci, &flit, cost, false, now);
                    }
                    self.channels[out_ci]
                        .as_mut()
                        .expect("route stays on the mesh")
                        .push(flit, now);
                }
                continue;
            }
            let Some(vc) = self.routers[r].inputs()[in_port].accept_target(&head) else {
                continue;
            };
            let t_rc = self.prof_now();
            let routed = self.route_via(r, head.dest as usize, Port::Local);
            self.span_leaf("route.compute", t_rc, 0);
            let Some(route) = routed else {
                continue; // destination unreachable right now: wait
            };
            let flit = self.nis[r].inject.pop_front().expect("checked nonempty");
            if flit.is_head() {
                if let Some(prof) = self.profiler.as_mut() {
                    prof.phases.rc += 1; // route computed at injection
                }
                let xy = self.mesh.xy_route(r, flit.dest as usize);
                if route != xy {
                    self.stats.reroutes += 1;
                    self.trace(Event::Rerouted {
                        cycle: now,
                        router: r as u32,
                        packet: flit.packet_id,
                        from: xy.index() as u8,
                        to: route.index() as u8,
                    });
                    if let Some(j) = self.journey.as_mut() {
                        j.on_reroute(flit.packet_id, r as u16, now);
                    }
                }
            }
            let ready = now + if flit.is_head() { self.cfg.pipeline_latency as u64 } else { 1 };
            if flit.is_head() {
                if let Some(att) = self.attribution.as_mut() {
                    att.on_pipeline(flit.packet_id, self.cfg.pipeline_latency as u64);
                }
                if let Some(j) = self.journey.as_mut() {
                    j.on_pipeline(flit.packet_id, r as u16, self.cfg.pipeline_latency as u64, now);
                }
            }
            let router = &mut self.routers[r];
            router.counters.buffer_writes += 1;
            router.step.in_flits[in_port] += 1;
            router.input_mut(in_port).enqueue(vc, flit, route, ready);
            self.span_count(1, 1); // injected into an input VC buffer
        }
    }

    // ------------------------------------------------------------------
    // Ejection / packet completion
    // ------------------------------------------------------------------

    /// Ejects `flit` at its destination NI, recorded as an `eject` leaf
    /// span under whichever phase delivered it.
    fn eject(&mut self, r: usize, flit: Flit) {
        let t0 = self.prof_now();
        self.eject_inner(r, flit);
        self.span_leaf("eject", t0, 1);
    }

    fn eject_inner(&mut self, r: usize, mut flit: Flit) {
        debug_assert_eq!(flit.dest as usize, r, "flit ejected at wrong node");
        if flit.is_head() {
            if let Some(att) = self.attribution.as_mut() {
                att.on_head_eject(flit.packet_id, self.now);
            }
            if let Some(j) = self.journey.as_mut() {
                j.on_head_eject(flit.packet_id, self.now);
            }
        }
        // A flit ejected straight off the bypass still carries undecoded
        // per-hop codeword corruption; it surfaces at the NI.
        flit.e2e_flips = flit.e2e_flips.saturating_add(flit.hop_flips);
        flit.hop_flips = 0;
        let mut crc_failed_now = false;
        if self.cfg.e2e_crc {
            self.routers[r].counters.crc_ops += 1; // e2e decode
            if flit.e2e_flips > 0 {
                let payload = flit.payload();
                let mut cw = self.suite.encode(EccScheme::Crc, payload);
                let bits = cw.len();
                let k = (flit.e2e_flips as usize).min(bits) as u32;
                for pos in self.injector.choose_positions(bits, k) {
                    cw.flip_bit(pos);
                }
                let (_, status) = self.suite.decode(EccScheme::Crc, &cw);
                crc_failed_now = status == DecodeStatus::Detected;
            }
        }
        let entry = self.nis[r].recv.entry(flit.packet_id).or_default();
        entry.flits += 1;
        entry.flips += flit.e2e_flips as u32;
        entry.crc_failed |= crc_failed_now;
        if entry.flits < crate::flit::FLITS_PER_PACKET {
            return;
        }
        let state = self.nis[r].recv.remove(&flit.packet_id).expect("entry exists");
        if state.crc_failed {
            // Bounded escalation: a packet that keeps failing its e2e CRC
            // past the generation budget is accounted as lost rather than
            // retried forever.
            let budget_ok =
                self.cfg.max_retx == 0 || u32::from(flit.generation) < self.cfg.max_retx;
            if !budget_ok || self.fs_split(flit.src as usize, r) {
                self.account_drop(&flit);
                return;
            }
            // End-to-end re-transmission: the source NI re-sends the packet.
            self.stats.e2e_retx_packets += 1;
            self.stats.retransmitted_flits += crate::flit::FLITS_PER_PACKET as u64;
            self.trace(Event::Retransmission {
                cycle: self.now,
                router: r as u32,
                packet: flit.packet_id,
                scope: RetxScope::E2e,
            });
            let src = flit.src as usize;
            let mut flits = make_packet(
                flit.packet_id,
                self.next_flit_id,
                flit.src,
                flit.dest,
                flit.injected_at,
            );
            self.next_flit_id += crate::flit::FLITS_PER_PACKET as u64;
            for f in &mut flits {
                f.retx = flit.retx + 1;
                f.generation = flit.generation + 1;
            }
            // e2e CRC re-encode energy at the source.
            self.routers[src].counters.crc_ops += crate::flit::FLITS_PER_PACKET as u64;
            self.routers[src].counters.retransmitted_flits += crate::flit::FLITS_PER_PACKET as u64;
            // Re-transmissions join the BACK of the source queue: pushing
            // them in front would interleave with a partially injected
            // packet's remaining flits and can deadlock the NI FIFO.
            self.nis[src].inject.extend(flits);
            if let Some(att) = self.attribution.as_mut() {
                att.on_e2e_retx(flit.packet_id, self.now);
            }
            if let Some(j) = self.journey.as_mut() {
                j.on_e2e_retx(flit.packet_id, self.now);
            }
            return;
        }
        // Final delivery.
        let latency = self.now + 1 - flit.injected_at;
        if let Some(att) = self.attribution.as_mut() {
            att.on_complete(flit.packet_id, flit.src, flit.dest, self.now, latency);
        }
        let bb_installed = self.blackbox.is_some();
        if let Some(j) = self.journey.as_mut() {
            if let Some(journey) = j.on_complete(flit.packet_id, self.now, latency) {
                // Feed the blackbox's slowest-journeys ring so post-mortem
                // bundles can name the worst recent journeys.
                if bb_installed {
                    let line = journey.to_jsonl_line();
                    if let Some(bb) = self.blackbox.as_ref() {
                        if let Ok(mut rec) = bb.lock() {
                            rec.push_journey(latency, line);
                        }
                    }
                }
            }
        }
        self.stats.packets_delivered += 1;
        self.stats.latency_sum += latency;
        self.stats.latency_max = self.stats.latency_max.max(latency);
        self.stats.latency_hist.record(latency);
        self.stats.last_delivery = self.now + 1;
        if state.flips > 0 {
            self.stats.corrupted_packets += 1;
        }
        self.completed += 1;
        let src = flit.src as usize;
        self.outstanding[src] = self.outstanding[src].saturating_sub(1);
        self.traffic.on_delivered(self.now, flit.packet_id);
        // Paper Section 5: router i's latency covers "each flit transmission
        // within the time step" — every router that transmitted the packet.
        // Credit the whole XY path so a misconfigured router feels the
        // latency of the through-traffic it hurt.
        let mut here = src;
        loop {
            let step = &mut self.routers[here].step;
            step.ejected_latency_sum += latency;
            step.ejected_packets += 1;
            if here == r {
                break;
            }
            let p = self.mesh.xy_route(here, r);
            here = self.mesh.neighbor(here, p).expect("XY route stays on mesh");
        }
    }

    // ------------------------------------------------------------------
    // Phase 3: gating bookkeeping
    // ------------------------------------------------------------------

    fn incoming_occupancy(&self, r: usize) -> (usize, usize) {
        let mut total = 0;
        let mut max_one = 0;
        for p in Port::DIRECTIONS {
            if let Some(ci) = self.incoming_index(r, p) {
                if let Some(ch) = &self.channels[ci] {
                    total += ch.occupancy();
                    max_one = max_one.max(ch.occupancy());
                }
            }
        }
        (total, max_one)
    }

    /// Whether any incoming ready flit needs to *turn* at router `r` — a
    /// maneuver the crossbar-less bypass cannot perform, so it must wake
    /// the router.
    fn incoming_turn_pending(&self, r: usize) -> bool {
        let now = self.now;
        for p in Port::DIRECTIONS {
            let Some(ci) = self.incoming_index(r, p) else { continue };
            let Some(ch) = &self.channels[ci] else { continue };
            if let Some(flit) = ch.peek_ready(now) {
                let Some(route) = self.route_via(r, flit.dest as usize, p) else {
                    continue; // unreachable right now: nothing to wake for
                };
                if route != Port::Local && route != p.opposite() {
                    return true;
                }
            }
        }
        false
    }

    fn gating_phase(&mut self) {
        let now = self.now;
        for r in 0..self.mesh.nodes() {
            if !self.health.router_up(r) {
                // A dead router draws no dynamic power and makes no gating
                // transitions; account its cycles as gated.
                let router = &mut self.routers[r];
                router.step.cycles += 1;
                router.step.gated_cycles += 1;
                self.stats.gated_router_cycles += 1;
                continue;
            }
            let (incoming, max_incoming) = self.incoming_occupancy(r);
            let turn_pending = self.incoming_turn_pending(r);
            let ni_waiting = !self.nis[r].inject.is_empty();
            let router = &mut self.routers[r];
            router.step.occupancy_sum += router.occupancy() as u64;
            router.step.cycles += 1;
            let mut gate_edge = None;
            match router.gate {
                GateState::On => {
                    let busy = router.occupancy() > 0 || incoming > 0 || ni_waiting;
                    if busy {
                        router.idle_cycles = 0;
                    } else {
                        router.idle_cycles = router.idle_cycles.saturating_add(1);
                    }
                    // Mode 0 is advisory: the PG controller only engages on
                    // a quiet router (paper §4: triggered when the router is
                    // underutilized or overheating is predicted).
                    let forced_ready = router.directive.gate == Some(true)
                        && router.idle_cycles >= self.cfg.forced_idle_threshold;
                    let reactive_ready = self.cfg.reactive_gating
                        && router.directive.gate != Some(false)
                        && router.idle_cycles >= self.cfg.idle_gate_threshold;
                    if (forced_ready || reactive_ready)
                        && router.is_gateable()
                        && (self.cfg.bypass_enabled || (!busy && !ni_waiting && incoming == 0))
                    {
                        router.gate = GateState::Gated;
                        router.idle_cycles = 0;
                        gate_edge = Some(GateEdge::On);
                    }
                    router.gate_pending = false;
                }
                GateState::Gated => {
                    router.step.gated_cycles += 1;
                    self.stats.gated_router_cycles += 1;
                    let forced = router.directive.gate == Some(true);
                    let policy_wake = router.directive.gate == Some(false);
                    let turn_wake = turn_pending;
                    let pressure_wake = if forced {
                        // Proactive stress-relax mode rides out pressure
                        // using MFAC storage before powering back on.
                        max_incoming
                            >= self.cfg.forced_wake_occupancy.min(self.cfg.channel_capacity.max(1))
                    } else {
                        max_incoming
                            >= self.cfg.wake_occupancy.min(self.cfg.channel_capacity.max(1))
                    };
                    let stranded = !self.cfg.bypass_enabled && (incoming > 0 || ni_waiting);
                    if policy_wake || pressure_wake || stranded || turn_wake {
                        router.gate = GateState::Waking(now + self.cfg.wakeup_latency as u64);
                        router.counters.wakeups += 1;
                    }
                }
                GateState::Waking(t) => {
                    router.step.gated_cycles += 1;
                    self.stats.gated_router_cycles += 1;
                    if now >= t {
                        router.gate = GateState::On;
                        router.idle_cycles = 0;
                        gate_edge = Some(GateEdge::Off);
                    }
                }
            }
            if let Some(edge) = gate_edge {
                self.trace(Event::PowerGate { cycle: now, router: r as u32, edge });
            }
        }
        if self.attribution.is_some() {
            let mut att = self.attribution.take().expect("checked above");
            att.on_gate_cycle();
            for r in 0..self.mesh.nodes() {
                if self.routers[r].is_gated_or_waking() || !self.health.router_up(r) {
                    att.on_gate_sample(r);
                }
            }
            self.attribution = Some(att);
        }
    }

    // ------------------------------------------------------------------
    // Phase 4: workload injection
    // ------------------------------------------------------------------

    fn workload_phase(&mut self) {
        let now = self.now;
        for node in 0..self.mesh.nodes() {
            if let Some(dest) = self.traffic.poll(now, node, self.outstanding[node]) {
                let packet_id = self.next_packet_id;
                let flits =
                    make_packet(packet_id, self.next_flit_id, node as u16, dest as u16, now);
                self.next_packet_id += 1;
                self.next_flit_id += crate::flit::FLITS_PER_PACKET as u64;
                self.stats.packets_injected += 1;
                self.outstanding[node] += 1;
                // Closed-loop bookkeeping: bind the packet id to the pending
                // transaction role BEFORE the reachability check below, so a
                // drop-at-injection still resolves to its transaction.
                self.traffic.on_injected(now, node, packet_id, dest);
                if let Some(att) = self.attribution.as_mut() {
                    att.on_inject(packet_id, now);
                }
                if let Some(j) = self.journey.as_mut() {
                    j.on_inject(
                        packet_id,
                        node as u16,
                        dest as u16,
                        now,
                        self.traffic.packet_txn(packet_id),
                    );
                }
                self.trace(Event::PacketInjected {
                    cycle: now,
                    router: node as u32,
                    packet: packet_id,
                    dest: dest as u32,
                });
                if self.fs_split(node, dest) {
                    // The destination can never be reached (dead source or
                    // dest router, or a mesh split): account the loss at
                    // injection instead of letting the packet wedge the NI.
                    self.account_drop(&flits[0]);
                    continue;
                }
                if self.cfg.e2e_crc {
                    // e2e CRC encode at the source NI.
                    self.routers[node].counters.crc_ops += crate::flit::FLITS_PER_PACKET as u64;
                }
                self.nis[node].inject.extend(flits);
            }
        }
    }

    // ------------------------------------------------------------------
    // Phase 5: power / thermal / aging epoch
    // ------------------------------------------------------------------

    fn epoch_phase(&mut self) {
        let epoch = self.cfg.epoch_cycles;
        let n = self.mesh.nodes();
        let mut powers = Vec::with_capacity(n);
        let spec = RouterLeakageSpec {
            buffer_slots: self.cfg.buffer_slots_per_router(),
            channel_stages: self.cfg.channel_stages_per_router(),
            has_bst: self.cfg.has_bst,
            has_qtable: self.cfg.has_qtable,
        };
        for r in 0..n {
            let counters = std::mem::take(&mut self.routers[r].counters);
            let dyn_pj = self.cfg.energy.dynamic_pj(&counters);
            let gated = self.routers[r].is_gated_or_waking() || !self.health.router_up(r);
            let temp = self.thermal.temp_c(r);
            let static_mw = self.cfg.leakage.router_static_mw(
                &spec,
                self.routers[r].directive.scheme,
                temp,
                gated,
            );
            let dyn_mw = dyn_pj / (epoch as f64 * CLOCK_PERIOD_NS);
            self.ledger.add_dynamic_pj(dyn_pj);
            self.ledger.add_static_epoch(static_mw, epoch);
            let total = static_mw + dyn_mw;
            let step = &mut self.routers[r].step;
            step.power_mw_sum += total;
            step.epochs += 1;
            let activity = if gated {
                0.0
            } else {
                let switching =
                    (counters.xbar_traversals + counters.link_flits) as f64 / (epoch as f64 * 2.0);
                (switching + 0.02).min(1.0)
            };
            self.aging[r].accumulate(&self.cfg.aging, temp, activity, epoch);
            powers.push(total);
        }
        self.thermal.step(&powers, epoch);
        for r in 0..n {
            self.re[r] = self.cfg.varius.bit_error_rate(
                self.thermal.temp_c(r),
                self.cfg.vdd,
                self.aging[r].delay_degradation(&self.cfg.aging),
            );
        }
        if self.attribution.is_some() {
            let mut att = self.attribution.take().expect("checked above");
            for r in 0..n {
                att.on_temp_sample(r, self.thermal.temp_c(r));
            }
            att.on_temp_epoch();
            self.attribution = Some(att);
        }
    }

    // ------------------------------------------------------------------
    // Top-level stepping
    // ------------------------------------------------------------------

    /// Advances the simulation by one cycle.
    ///
    /// When a profiler is installed, the cycle decomposes into the
    /// `noc-prof` span hierarchy (`step_cycle` → `fault.hard`,
    /// `alloc.vc_sa`, `router.bypass`, `link.traverse` with its
    /// `route.compute`/`ecc.*`/`retx.ladder`/`fault.inject`/`eject`
    /// leaves, `power.gating`, `workload.inject`, `epoch.update`);
    /// disabled, each guard is a single branch.
    pub fn step_cycle(&mut self) {
        self.span_enter("step_cycle");
        self.span_enter("fault.hard");
        self.apply_hard_faults();
        self.span_exit();
        for r in 0..self.mesh.nodes() {
            if !self.health.router_up(r) {
                continue; // dead routers do no work at all
            }
            if self.routers[r].is_on() {
                self.span_enter("alloc.vc_sa");
                self.sa_phase(r);
                self.span_exit();
            } else if self.cfg.bypass_enabled {
                let waking = matches!(self.routers[r].gate, GateState::Waking(_));
                if !waking || self.cfg.bypass_during_wake {
                    self.span_enter("router.bypass");
                    self.bypass_phase(r);
                    self.span_exit();
                }
            }
        }
        self.span_enter("link.traverse");
        self.delivery_phase();
        self.span_exit();
        self.span_enter("power.gating");
        self.gating_phase();
        self.span_exit();
        self.span_enter("workload.inject");
        self.workload_phase();
        self.span_exit();
        if self.tracer.is_some() || self.blackbox.is_some() || self.journey.is_some() {
            self.drain_txn_events();
        }
        self.now += 1;
        self.stats.cycles = self.now;
        if self.now.is_multiple_of(self.cfg.epoch_cycles) {
            self.span_enter("epoch.update");
            self.epoch_phase();
            self.span_exit();
        }
        self.span_exit();
    }

    /// Runs `n` cycles (or fewer if the workload completes); returns whether
    /// the run is done.
    pub fn run_cycles(&mut self, n: u64) -> bool {
        let t0 = if self.profiler.is_some() { Some(Instant::now()) } else { None };
        let start = self.now;
        for _ in 0..n {
            if self.is_done() || self.now >= self.cfg.max_cycles || self.stall.is_some() {
                break;
            }
            self.step_cycle();
            if self.watchdog_check() {
                break;
            }
        }
        if let (Some(t0), Some(prof)) = (t0, self.profiler.as_mut()) {
            prof.add_batch("sim.step_cycle", t0.elapsed(), self.now - start);
        }
        self.is_done() || self.now >= self.cfg.max_cycles || self.stall.is_some()
    }

    /// Applies one directive per router (control-policy output).
    ///
    /// # Panics
    ///
    /// Panics if `directives.len()` differs from the router count.
    pub fn apply_directives(&mut self, directives: &[RouterDirective]) {
        assert_eq!(directives.len(), self.mesh.nodes(), "one directive per router");
        for (r, d) in directives.iter().enumerate() {
            self.routers[r].directive = *d;
            for dir in Port::DIRECTIONS {
                let ci = self.channel_index(r, dir);
                if let Some(ch) = self.channels[ci].as_mut() {
                    ch.relaxed = d.relaxed;
                }
            }
        }
    }

    /// Charges the energy of `n` RL decisions (one per agent per time step).
    pub fn charge_rl_decisions(&mut self, n: u64) {
        self.ledger.add_dynamic_pj(self.cfg.energy.rl_decision_pj * n as f64);
    }

    /// Collects per-router observations for the elapsed control time step
    /// and resets the per-step accumulators.
    pub fn observations(&mut self) -> Vec<RouterObservation> {
        let n = self.mesh.nodes();
        let slots = self.cfg.buffer_slots_per_router() as f64;
        let mut out = Vec::with_capacity(n);
        for r in 0..n {
            let temp = self.thermal.temp_c(r);
            let step = std::mem::take(&mut self.routers[r].step);
            // Eq. 7's aging factor accrues over hours of wall-clock time and
            // is numerically ~1.0 within one control step; expose the
            // *instantaneous aging rate* instead (NBTI temperature
            // acceleration x stress time), normalized to stay of order 1,
            // so the reward can actually penalize aging-heavy operation.
            let active = 1.0 - step.gated_cycles as f64 / step.cycles.max(1) as f64;
            let aging_factor = 1.0 + self.cfg.aging.nbti_weight(temp) * active / 10.0;
            let cycles = step.cycles.max(1) as f64;
            let mut features = [0.0f64; 16];
            for p in 0..PORTS {
                features[p] = step.in_flits[p] as f64 / cycles;
                features[5 + p] = step.occupancy_sum as f64 / (cycles * slots.max(1.0));
                features[10 + p] = step.out_flits[p] as f64 / cycles;
            }
            // Buffer utilization is per-port in the paper; our occupancy sum
            // is router-wide, so replicate the router-wide value across the
            // five buffer features (they are highly correlated in practice,
            // which the paper itself notes in §7.4).
            features[15] = temp;
            let avg_latency = if step.ejected_packets > 0 {
                step.ejected_latency_sum as f64 / step.ejected_packets as f64
            } else {
                0.0
            };
            let avg_power =
                if step.epochs > 0 { step.power_mw_sum / step.epochs as f64 } else { 0.0 };
            out.push(RouterObservation {
                router: r,
                features,
                avg_latency,
                ejected_packets: step.ejected_packets,
                avg_power_mw: avg_power,
                aging_factor,
                temperature_c: temp,
                error_hist: step.error_hist,
                retransmissions: step.retransmissions,
                gated_fraction: step.gated_cycles as f64 / cycles,
            });
        }
        out
    }

    /// Runs to completion under a control policy invoked every `time_step`
    /// cycles, then produces the final report.
    pub fn run_to_completion<F>(&mut self, time_step: u64, mut policy: F) -> RunReport
    where
        F: FnMut(&[RouterObservation], Cycle) -> Option<Vec<RouterDirective>>,
    {
        loop {
            if self.run_cycles(time_step) {
                break;
            }
            let obs = self.observations();
            if let Some(directives) = policy(&obs, self.now) {
                self.apply_directives(&directives);
            }
        }
        self.report()
    }

    /// Advances the clock ignoring `max_cycles` (debugging aid).
    #[doc(hidden)]
    pub fn probe_cycles(&mut self, n: u64) {
        for _ in 0..n {
            if self.is_done() {
                break;
            }
            self.step_cycle();
        }
    }

    /// Explains why each router's SA cannot grant anything (debugging aid).
    #[doc(hidden)]
    pub fn debug_sa_block(&self, router: usize) {
        print!("{}", self.snapshot_sa_block(router));
    }

    /// String form of [`Network::debug_sa_block`] — the introspection text
    /// rendered for the telemetry/debug layer instead of stdout.
    #[doc(hidden)]
    pub fn snapshot_sa_block(&self, router: usize) -> String {
        use std::fmt::Write as _;
        let mut buf = String::new();
        let now = self.now;
        let r = router;
        let _ = writeln!(buf, "router {r} gate={:?}:", self.routers[r].gate);
        for p in 0..PORTS {
            for (vi, vc) in self.routers[r].inputs()[p].vcs().iter().enumerate() {
                if vc.occupancy() == 0 {
                    continue;
                }
                let front = vc.sa_candidate(now);
                let out = vc.route();
                let reason = if let Some(f) = front {
                    if out == Port::Local {
                        "ejectable NOW".to_owned()
                    } else {
                        let ci = self.channel_index(r, out);
                        let ch_full = !matches!(&self.channels[ci], Some(ch) if ch.has_space());
                        if ch_full {
                            format!("out {out:?} channel full")
                        } else if f.is_head() {
                            let dv = self.mesh.neighbor(r, out);
                            match dv {
                                Some(dv) if self.routers[dv].is_on() => {
                                    let in_port = out.opposite().index();
                                    let free = self.routers[dv].inputs()[in_port]
                                        .vcs()
                                        .iter()
                                        .any(InputVc::available);
                                    if free {
                                        "head grantable NOW".to_owned()
                                    } else {
                                        format!("no free VC at {dv}")
                                    }
                                }
                                _ => "downstream gated: head grantable NOW".to_owned(),
                            }
                        } else {
                            "body grantable NOW".to_owned()
                        }
                    }
                } else {
                    "front not SA-ready".to_owned()
                };
                let _ = writeln!(
                    buf,
                    "  port {p} vc {vi}: pkt={:?} occ={} route={:?} -> {}",
                    vc.packet(),
                    vc.occupancy(),
                    vc.route(),
                    reason
                );
            }
        }
        buf
    }

    /// Counts movement opportunities in the current state (debugging aid):
    /// SA-grantable VC fronts, deliverable channel flits, and NI injections.
    #[doc(hidden)]
    pub fn debug_movable(&self) -> (usize, usize, usize) {
        let now = self.now;
        let mut sa = 0;
        for r in 0..self.mesh.nodes() {
            if !self.routers[r].is_on() {
                continue;
            }
            for p in 0..PORTS {
                for vc in self.routers[r].inputs()[p].vcs() {
                    let Some(f) = vc.sa_candidate(now) else { continue };
                    let out = vc.route();
                    if out == Port::Local {
                        sa += 1;
                        continue;
                    }
                    let ci = self.channel_index(r, out);
                    let space = matches!(&self.channels[ci], Some(ch) if ch.has_space());
                    if !space {
                        continue;
                    }
                    if f.is_head() {
                        let dv = self.mesh.neighbor(r, out);
                        let ok = match dv {
                            Some(dv)
                                if self.routers[dv].is_on() && !self.routers[dv].gate_pending =>
                            {
                                let in_port = out.opposite().index();
                                self.routers[dv].inputs()[in_port]
                                    .vcs()
                                    .iter()
                                    .any(InputVc::available)
                            }
                            _ => true, // NO_VC path
                        };
                        if ok {
                            sa += 1;
                        }
                    } else {
                        sa += 1;
                    }
                }
            }
        }
        let mut deliver = 0;
        for u in 0..self.mesh.nodes() {
            for dir in Port::DIRECTIONS {
                let Some(v) = self.mesh.neighbor(u, dir) else { continue };
                if !self.routers[v].is_on() {
                    if self.cfg.bypass_enabled {
                        let ci = self.channel_index(u, dir);
                        if let Some(ch) = &self.channels[ci] {
                            if ch.peek_ready(now).is_some() {
                                deliver += 1; // bypass will look at it
                            }
                        }
                    }
                    continue;
                }
                let pending = self.routers[v].gate_pending;
                let ci = self.channel_index(u, dir);
                let in_port = dir.opposite().index();
                let channels_view = &self.channels;
                let health = &self.health;
                let mesh = self.mesh;
                let fault_aware = self.cfg.fault_aware_routing;
                let Some(ch) = channels_view[ci].as_ref() else { continue };
                let port = &self.routers[v].inputs()[in_port];
                let continuation_ok = |flit: &Flit| {
                    let route = if fault_aware {
                        health.route(v, flit.dest as usize, dir.opposite())
                    } else {
                        Some(mesh.xy_route(v, flit.dest as usize))
                    };
                    match route {
                        Some(Port::Local) => true,
                        Some(out) => matches!(
                            &channels_view[v * DIRS + out.index()],
                            Some(ch) if ch.has_space()
                        ),
                        None => false,
                    }
                };
                if ch
                    .scan_deliverable(now, |flit| {
                        if flit.is_head() {
                            if flit.vc != NO_VC {
                                port.vcs()[flit.vc as usize].is_reserved_for(flit.packet_id)
                            } else {
                                let can_bind =
                                    !pending && port.vcs().iter().any(InputVc::available);
                                can_bind || continuation_ok(flit)
                            }
                        } else if port.vcs().iter().any(|vc| vc.packet() == Some(flit.packet_id)) {
                            port.vcs()
                                .iter()
                                .any(|vc| vc.packet() == Some(flit.packet_id) && vc.has_space())
                        } else {
                            continuation_ok(flit)
                        }
                    })
                    .is_some()
                {
                    deliver += 1;
                }
            }
        }
        let ni = (0..self.mesh.nodes())
            .filter(|&r| {
                self.routers[r].is_on()
                    && self.nis[r]
                        .inject
                        .front()
                        .map(|h| {
                            self.routers[r].inputs()[Port::Local.index()].accept_target(h).is_some()
                        })
                        .unwrap_or(false)
            })
            .count();
        (sa, deliver, ni)
    }

    /// Prints every VC of a router including reservations (debugging aid).
    #[doc(hidden)]
    pub fn debug_vcs(&self, r: usize) {
        print!("{}", self.snapshot_vcs(r));
    }

    /// String form of [`Network::debug_vcs`].
    #[doc(hidden)]
    pub fn snapshot_vcs(&self, r: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for p in 0..PORTS {
            for (vi, vc) in self.routers[r].inputs()[p].vcs().iter().enumerate() {
                let _ = writeln!(
                    out,
                    "router {r} port {p} vc {vi}: packet={:?} reserved={:?} occ={} route={:?}",
                    vc.packet(),
                    vc.reserved_by_debug(),
                    vc.occupancy(),
                    vc.route()
                );
            }
        }
        out
    }

    /// Finds every location a packet's flits occupy (debugging aid).
    #[doc(hidden)]
    pub fn debug_find_packet(&self, pkt: u64) {
        print!("{}", self.snapshot_find_packet(pkt));
    }

    /// String form of [`Network::debug_find_packet`].
    #[doc(hidden)]
    pub fn snapshot_find_packet(&self, pkt: u64) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (ci, ch) in self.channels.iter().enumerate() {
            let Some(ch) = ch else { continue };
            for i in 0..ch.occupancy() {
                let f = ch.get(i);
                if f.packet_id == pkt {
                    let _ = writeln!(
                        out,
                        "pkt {pkt}: channel {} dir {} idx {i} kind={:?} vc={}",
                        ci / DIRS,
                        ci % DIRS,
                        f.kind,
                        f.vc
                    );
                }
            }
        }
        for r in 0..self.mesh.nodes() {
            for p in 0..PORTS {
                for (vi, vc) in self.routers[r].inputs()[p].vcs().iter().enumerate() {
                    if vc.packet() == Some(pkt) || vc.reserved_by_debug() == Some(pkt) {
                        let _ = writeln!(
                            out,
                            "pkt {pkt}: router {r} port {p} vc {vi} bound={:?} reserved={:?} occ={}",
                            vc.packet(),
                            vc.reserved_by_debug(),
                            vc.occupancy()
                        );
                    }
                }
            }
            for f in &self.nis[r].inject {
                if f.packet_id == pkt {
                    let _ = writeln!(out, "pkt {pkt}: NI {r} inject queue kind={:?}", f.kind);
                }
            }
            if self.nis[r].recv.contains_key(&pkt) {
                let _ = writeln!(out, "pkt {pkt}: NI {r} recv partial");
            }
        }
        out
    }

    /// Dumps one channel's full contents (debugging aid).
    #[doc(hidden)]
    pub fn debug_channel(&self, u: usize, dir: Port) {
        print!("{}", self.snapshot_channel(u, dir));
    }

    /// String form of [`Network::debug_channel`].
    #[doc(hidden)]
    pub fn snapshot_channel(&self, u: usize, dir: Port) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let ci = self.channel_index(u, dir);
        let Some(ch) = &self.channels[ci] else {
            let _ = writeln!(out, "channel {u} {dir:?}: boundary");
            return out;
        };
        let v = self.mesh.neighbor(u, dir).expect("channel exists");
        let _ = writeln!(out, "channel {u}->{v} ({dir:?}) occ={}:", ch.occupancy());
        for i in 0..ch.occupancy() {
            let f = ch.get(i);
            let in_port = dir.opposite().index();
            let port = &self.routers[v].inputs()[in_port];
            let bound = port.vcs().iter().position(|vc| vc.packet() == Some(f.packet_id));
            let _ = writeln!(
                out,
                "  [{i}] pkt={} kind={:?} vc={} dest={} src={} retx={} bound_at={:?}",
                f.packet_id, f.kind, f.vc, f.dest, f.src, f.retx, bound
            );
        }
        out
    }

    /// Prints per-channel blocking detail for stuck-state debugging.
    #[doc(hidden)]
    pub fn debug_blocked(&self, limit: usize) {
        print!("{}", self.snapshot_blocked(limit));
    }

    /// String form of [`Network::debug_blocked`].
    #[doc(hidden)]
    pub fn snapshot_blocked(&self, limit: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let now = self.now;
        let mut shown = 0;
        for u in 0..self.mesh.nodes() {
            for dir in Port::DIRECTIONS {
                let Some(v) = self.mesh.neighbor(u, dir) else { continue };
                let ci = self.channel_index(u, dir);
                let Some(ch) = &self.channels[ci] else { continue };
                if ch.occupancy() == 0 {
                    continue;
                }
                let in_port = dir.opposite().index();
                let port = &self.routers[v].inputs()[in_port];
                let f = ch.get(0);
                let vcs: Vec<String> = port
                    .vcs()
                    .iter()
                    .map(|vc| {
                        format!(
                            "[pkt={:?} res={} occ={} route={:?}]",
                            vc.packet(),
                            vc.is_reserved_for(f.packet_id),
                            vc.occupancy(),
                            vc.route()
                        )
                    })
                    .collect();
                let _ = writeln!(
                    out,
                    "ch {u}->{v} ({dir:?}) occ={} front: pkt={} kind={:?} vc={} ready={} dest={} | down on={} pending={} vcs={}",
                    ch.occupancy(),
                    f.packet_id,
                    f.kind,
                    f.vc,
                    ch.peek_ready(now).is_some(),
                    f.dest,
                    self.routers[v].is_on(),
                    self.routers[v].gate_pending,
                    vcs.join(" ")
                );
                shown += 1;
                if shown >= limit {
                    return out;
                }
            }
        }
        out
    }

    /// Prints a diagnostic snapshot of stuck state (debugging aid).
    #[doc(hidden)]
    pub fn debug_dump(&self) {
        print!("{}", self.snapshot_dump());
    }

    /// String form of [`Network::debug_dump`].
    #[doc(hidden)]
    pub fn snapshot_dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for r in 0..self.mesh.nodes() {
            let router = &self.routers[r];
            let occ = router.occupancy();
            let ni = self.nis[r].inject.len();
            let recv = self.nis[r].recv.len();
            let reserved: usize = router
                .inputs()
                .iter()
                .flat_map(|p| p.vcs())
                .filter(|vc| !vc.is_idle() && vc.occupancy() == 0 && vc.packet().is_none())
                .count();
            let bound: usize = router
                .inputs()
                .iter()
                .flat_map(|p| p.vcs())
                .filter(|vc| vc.packet().is_some())
                .count();
            let mut ch_occ = 0;
            for dir in Port::DIRECTIONS {
                if let Some(ch) = &self.channels[self.channel_index(r, dir)] {
                    ch_occ += ch.occupancy();
                }
            }
            if occ + ni + recv + ch_occ + reserved + bound > 0 {
                let _ = writeln!(
                    out,
                    "router {r}: gate={:?} pending={} occ={occ} ni={ni} recv={recv} out_ch={ch_occ} reserved_vcs={reserved} bound_vcs={bound}",
                    router.gate, router.gate_pending
                );
            }
        }
        out
    }

    /// Produces the final report for the simulated interval so far.
    pub fn report(&self) -> RunReport {
        let exec = self.stats.last_delivery.max(1);
        let power = self.ledger.report(self.now.max(1));
        let mean_aging = self.aging.iter().map(|a| a.aging_factor(&self.cfg.aging)).sum::<f64>()
            / self.aging.len() as f64;
        RunReport {
            exec_cycles: exec,
            stats: self.stats.clone(),
            power,
            mttf_hours: network_mttf(&self.cfg.aging, &self.aging).map(|m| m.hours()),
            mean_temp_c: self.thermal.mean_c(),
            max_temp_c: self.thermal.max_c(),
            mean_aging_factor: mean_aging,
            injected_bit_flips: self.injector.injected_bits(),
            faulty_flit_traversals: self.injector.faulty_flits(),
            stall: self.stall.clone(),
            txn: self.traffic.txn_stats().map(|s| {
                let mut lat = s.completion_latencies.clone();
                lat.sort_unstable();
                TxnSummary {
                    issued: s.issued_total(),
                    completed: s.completed_total(),
                    failed: s.failed_total(),
                    shed: s.shed_total(),
                    in_flight: s.in_flight_total(),
                    timeouts: s.timeouts,
                    retries: s.retries,
                    p50_completion: noc_telemetry::percentile(&lat, 0.50),
                    p99_completion: noc_telemetry::percentile(&lat, 0.99),
                    violations: s.violations(),
                    orphans: self.traffic.txn_orphans(),
                }
            }),
        }
    }
}

/// Marks the reverse direction of every downed link so a physical link
/// fails in both directions regardless of which endpoint named it.
fn symmetrize_links(mesh: &Mesh, down: &mut [bool]) {
    for r in 0..mesh.nodes() {
        for dir in Port::DIRECTIONS {
            if down[r * DIRS + dir.index()] {
                if let Some(nb) = mesh.neighbor(r, dir) {
                    down[nb * DIRS + dir.opposite().index()] = true;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_config() -> SimConfig {
        let mut cfg = SimConfig::default();
        // Disable faults so the basic flow tests are deterministic.
        cfg.varius.base_rate = 0.0;
        cfg.varius.min_rate = 0.0;
        cfg
    }

    fn run(cfg: SimConfig, spec: WorkloadSpec) -> (RunReport, Network) {
        let mut net = Network::new(cfg, spec, 7);
        let done = net.run_cycles(500_000);
        assert!(done, "run did not finish");
        (net.report(), net)
    }

    #[test]
    fn delivers_all_packets_uniform() {
        let (report, net) = run(quiet_config(), WorkloadSpec::uniform(0.02, 20));
        assert!(net.is_done());
        assert_eq!(report.stats.packets_delivered, 64 * 20);
        assert_eq!(report.stats.packets_delivered, report.stats.packets_injected);
        assert_eq!(report.stats.corrupted_packets, 0);
        assert_eq!(report.stats.retransmitted_flits, 0);
    }

    #[test]
    fn single_packet_minimum_latency() {
        // One packet from node 0 to node 1 (one hop): latency should be
        // injection + pipeline + link + serialization, within a small bound.
        let mut cfg = quiet_config();
        cfg.width = 2;
        cfg.height = 2;
        let spec = WorkloadSpec { packets_per_node: 0, ..WorkloadSpec::uniform(0.0, 0) };
        let mut net = Network::new(cfg, spec, 1);
        // Hand-inject a packet.
        let flits = make_packet(0, 0, 0, 1, 0);
        net.stats.packets_injected = 1;
        net.outstanding[0] = 1;
        net.nis[0].inject.extend(flits);
        for _ in 0..60 {
            net.step_cycle();
        }
        assert_eq!(net.stats.packets_delivered, 1);
        let lat = net.stats.latency_sum;
        // 4 flits: head takes ~ (inject 1 + pipeline 4 + SA + link 1 +
        // pipeline at dest...) and tail 3 cycles behind.
        assert!((10..=25).contains(&lat), "one-hop packet latency {lat}");
    }

    #[test]
    fn latency_grows_with_load() {
        let (light, _) = run(quiet_config(), WorkloadSpec::uniform(0.005, 30));
        let (heavy, _) = run(quiet_config(), WorkloadSpec::uniform(0.06, 30));
        assert!(
            heavy.avg_latency() > light.avg_latency(),
            "heavy {} vs light {}",
            heavy.avg_latency(),
            light.avg_latency()
        );
    }

    #[test]
    fn deterministic_given_seeds() {
        let (a, _) = run(quiet_config(), WorkloadSpec::uniform(0.03, 15));
        let (b, _) = run(quiet_config(), WorkloadSpec::uniform(0.03, 15));
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn faults_cause_retransmissions_with_secded() {
        let mut cfg = SimConfig::default();
        cfg.varius.base_rate = 2e-4; // exaggerated rate to see activity fast
        cfg.varius.max_rate = 2e-4;
        cfg.varius.min_rate = 2e-4;
        let (report, _) = run(cfg, WorkloadSpec::uniform(0.02, 20));
        assert_eq!(report.stats.packets_delivered, 64 * 20);
        assert!(report.stats.faulty_traversals > 0);
        // SECDED corrects single-bit errors; some multi-bit errors trigger
        // per-hop retransmission.
        assert!(report.stats.corrected_bits > 0);
    }

    #[test]
    fn e2e_crc_catches_unprotected_corruption() {
        let mut cfg = SimConfig {
            default_scheme: EccScheme::Crc, // no per-hop protection
            e2e_crc: true,
            ..SimConfig::default()
        };
        cfg.varius.base_rate = 2e-4;
        cfg.varius.max_rate = 2e-4;
        cfg.varius.min_rate = 2e-4;
        let (report, _) = run(cfg, WorkloadSpec::uniform(0.02, 20));
        assert_eq!(report.stats.packets_delivered, 64 * 20);
        assert!(report.stats.e2e_retx_packets > 0, "CRC must trigger e2e retries");
        assert_eq!(report.stats.corrupted_packets, 0, "CRC-16 missed corruption");
    }

    #[test]
    fn unprotected_network_delivers_corrupted_packets() {
        let mut cfg =
            SimConfig { default_scheme: EccScheme::None, e2e_crc: false, ..SimConfig::default() };
        cfg.varius.base_rate = 2e-4;
        cfg.varius.max_rate = 2e-4;
        cfg.varius.min_rate = 2e-4;
        let (report, _) = run(cfg, WorkloadSpec::uniform(0.02, 20));
        assert!(report.stats.corrupted_packets > 0);
        assert_eq!(report.stats.retransmitted_flits, 0);
    }

    #[test]
    fn reactive_gating_saves_static_power_at_idle() {
        let mut low = quiet_config();
        low.reactive_gating = true;
        low.bypass_enabled = true;
        low.channel_capacity = 8;
        let (gated, _) = run(low.clone(), WorkloadSpec::uniform(0.002, 10));
        let mut nog = low;
        nog.reactive_gating = false;
        let (on, _) = run(nog, WorkloadSpec::uniform(0.002, 10));
        assert!(gated.stats.gated_router_cycles > 0);
        assert!(
            gated.power.static_mw < on.power.static_mw,
            "gated {} vs always-on {}",
            gated.power.static_mw,
            on.power.static_mw
        );
    }

    #[test]
    fn forced_gating_with_bypass_still_delivers() {
        let mut cfg = quiet_config();
        cfg.bypass_enabled = true;
        cfg.channel_capacity = 8;
        let spec = WorkloadSpec::uniform(0.01, 10);
        let mut net = Network::new(cfg, spec, 3);
        // Force-gate every router; traffic must still flow via bypass.
        let d = RouterDirective { gate: Some(true), scheme: EccScheme::Crc, relaxed: false };
        net.apply_directives(&[d; 64]);
        let done = net.run_cycles(500_000);
        assert!(done, "bypass-only network deadlocked");
        assert_eq!(net.stats().packets_delivered, net.stats().packets_injected);
        assert!(net.stats().gated_router_cycles > 0);
    }

    #[test]
    fn relaxed_timing_increases_latency() {
        let cfg = quiet_config();
        let spec = WorkloadSpec::uniform(0.02, 15);
        let mut normal = Network::new(cfg.clone(), spec.clone(), 5);
        normal.run_cycles(500_000);
        let mut relaxed_net = Network::new(cfg, spec, 5);
        let d = RouterDirective { gate: None, scheme: EccScheme::Secded, relaxed: true };
        relaxed_net.apply_directives(&[d; 64]);
        relaxed_net.run_cycles(500_000);
        assert!(
            relaxed_net.stats().avg_latency() > normal.stats().avg_latency() + 1.0,
            "relaxed {} vs normal {}",
            relaxed_net.stats().avg_latency(),
            normal.stats().avg_latency()
        );
    }

    #[test]
    fn observations_reflect_traffic() {
        let cfg = quiet_config();
        let mut net = Network::new(cfg, WorkloadSpec::uniform(0.05, 100), 9);
        net.run_cycles(2_000);
        let obs = net.observations();
        assert_eq!(obs.len(), 64);
        let busy = obs.iter().filter(|o| o.features[..5].iter().sum::<f64>() > 0.0).count();
        assert!(busy > 32, "most routers should see traffic, saw {busy}");
        for o in &obs {
            assert!(o.temperature_c >= 45.0 && o.temperature_c <= 130.0);
            assert!(o.aging_factor >= 1.0);
            for f in &o.features[..15] {
                assert!(*f >= 0.0 && *f <= 1.5, "feature {f}");
            }
        }
        // Second observation call sees a drained accumulator.
        let obs2 = net.observations();
        assert!(obs2.iter().all(|o| o.features[..15].iter().all(|&f| f == 0.0)));
    }

    #[test]
    fn run_to_completion_invokes_policy() {
        let cfg = quiet_config();
        let mut net = Network::new(cfg, WorkloadSpec::uniform(0.03, 60), 2);
        let mut calls = 0;
        let report = net.run_to_completion(500, |obs, _| {
            calls += 1;
            assert_eq!(obs.len(), 64);
            None
        });
        assert!(calls > 0);
        assert_eq!(report.stats.packets_delivered, 64 * 60);
        assert!(report.mttf_hours.is_some());
        assert!(report.power.total_mw() > 0.0);
    }

    /// Zero progress from cycle 0: one packet stuck behind a dead link with
    /// rerouting off. The watchdog fires at exactly `cycle == stall_window`
    /// (progress was never made, so the baseline is cycle 0), and the
    /// [`StallReport`] fields carry the full diagnostic.
    #[test]
    fn watchdog_fires_on_zero_progress_from_cycle_zero() {
        let mut cfg = quiet_config();
        cfg.width = 2;
        cfg.height = 2;
        cfg.stall_window = 150;
        // Node 0's eastbound link (dir 0 = X+) is the only XY route to
        // node 1; kill it from cycle 0 so the hand-injected packet can
        // never leave its NI.
        cfg.hard_faults = noc_fault::HardFaultScenario {
            faults: vec![noc_fault::HardFault {
                at: 0,
                target: HardFaultTarget::Link { router: 0, dir: 0 },
                kind: noc_fault::HardFaultKind::FailStop,
            }],
        };
        let spec = WorkloadSpec { packets_per_node: 0, ..WorkloadSpec::uniform(0.0, 0) };
        let mut net = Network::new(cfg, spec, 1);
        net.stats.packets_injected = 1;
        net.outstanding[0] = 1;
        net.nis[0].inject.extend(make_packet(0, 0, 0, 1, 0));

        let done = net.run_cycles(10_000);
        assert!(done, "a stalled run must terminate via the watchdog");
        let stall = net.stall().expect("watchdog must fire");
        assert_eq!(stall.cycle, 150, "zero progress since cycle 0 fires at the window edge");
        assert_eq!(stall.window, 150);
        assert_eq!(stall.in_flight, 1);
        assert!(!stall.dump.is_empty(), "state dump attached");
        assert_eq!(net.stats.cycles, stall.cycle, "the run stops the cycle the watchdog fires");
        assert_eq!(net.stats.packets_delivered, 0);
        assert_eq!(net.stats.packets_dropped, 0);
    }

    /// Progress landing exactly when the window elapses wins over the
    /// stall: the score check precedes the window check, so a delivery at
    /// `last_progress + window` resets the baseline instead of firing.
    #[test]
    fn watchdog_progress_exactly_at_threshold_resets_the_window() {
        let mut cfg = quiet_config();
        cfg.stall_window = 100;
        let mut net = Network::new(
            cfg,
            WorkloadSpec { packets_per_node: 0, ..WorkloadSpec::uniform(0.0, 0) },
            1,
        );
        net.stats.packets_injected = 2;

        // One cycle short of the window: no stall.
        net.now = 99;
        assert!(!net.watchdog_check());
        // A delivery exactly at the window edge resets instead of firing.
        net.now = 100;
        net.stats.packets_delivered = 1;
        assert!(!net.watchdog_check(), "progress at the threshold must win");
        assert!(net.stall.is_none());
        assert_eq!(net.last_progress, 100, "baseline resets to the progress cycle");
        assert_eq!(net.last_score, 1);

        // The next window is measured from the reset point, not cycle 0.
        net.now = 199;
        assert!(!net.watchdog_check());
        net.now = 200;
        assert!(net.watchdog_check(), "a full silent window after the reset fires");
        let stall = net.stall().expect("stall armed");
        assert_eq!(stall.cycle, 200);
        assert_eq!(stall.window, 100);
        assert_eq!(stall.in_flight, 1, "injected 2 − delivered 1");
    }

    /// A drop counts as forward progress exactly like a delivery: the
    /// score is `delivered + dropped`.
    #[test]
    fn watchdog_counts_drops_as_progress() {
        let mut cfg = quiet_config();
        cfg.stall_window = 100;
        let mut net = Network::new(
            cfg,
            WorkloadSpec { packets_per_node: 0, ..WorkloadSpec::uniform(0.0, 0) },
            1,
        );
        net.stats.packets_injected = 3;
        net.now = 100;
        net.stats.packets_dropped = 1;
        assert!(!net.watchdog_check(), "a drop is progress");
        assert_eq!(net.last_score, 1);
        net.now = 200;
        assert!(net.watchdog_check());
        assert_eq!(net.stall().unwrap().in_flight, 2);
    }

    /// Idle tails — nothing in flight — never trip the watchdog no matter
    /// how stale the score is, and traffic appearing after a long idle tail
    /// gets a full fresh window before the watchdog can fire.
    #[test]
    fn watchdog_ignores_idle_tails() {
        let mut cfg = quiet_config();
        cfg.stall_window = 100;
        let mut net = Network::new(
            cfg,
            WorkloadSpec { packets_per_node: 0, ..WorkloadSpec::uniform(0.0, 0) },
            1,
        );
        net.stats.packets_injected = 5;
        net.stats.packets_delivered = 3;
        net.stats.packets_dropped = 2;
        for now in [50, 150, 100_000, 1_000_000] {
            net.now = now;
            assert!(!net.watchdog_check(), "idle tail tripped the watchdog at cycle {now}");
        }
        assert!(net.stall().is_none());

        // New traffic after the tail: the baseline is the last idle check,
        // so the stall needs a full window of in-flight silence from there.
        net.stats.packets_injected = 6;
        net.now = 1_000_000 + 99;
        assert!(!net.watchdog_check());
        net.now = 1_000_000 + 100;
        assert!(net.watchdog_check());
        assert_eq!(net.stall().unwrap().cycle, 1_000_100);
    }

    /// `stall_window == 0` disables the watchdog entirely.
    #[test]
    fn watchdog_disabled_with_zero_window() {
        let mut cfg = quiet_config();
        cfg.stall_window = 0;
        let mut net = Network::new(
            cfg,
            WorkloadSpec { packets_per_node: 0, ..WorkloadSpec::uniform(0.0, 0) },
            1,
        );
        net.stats.packets_injected = 1;
        net.now = 10_000_000;
        assert!(!net.watchdog_check());
        assert!(net.stall().is_none());
    }

    // ------------------------------------------------------------------
    // Closed-loop request–reply integration
    // ------------------------------------------------------------------

    use noc_traffic::ReqReplySpec;

    fn small_reqreply_cfg() -> SimConfig {
        let mut cfg = quiet_config();
        cfg.width = 4;
        cfg.height = 4;
        cfg
    }

    /// On a healthy mesh every transaction completes, the conservation
    /// invariant holds, and the report carries the transaction summary.
    #[test]
    fn closed_loop_reqreply_completes_and_conserves() {
        let spec = WorkloadSpec::reqreply(0.05, 4, ReqReplySpec::default());
        let mut net = Network::new(small_reqreply_cfg(), spec, 11);
        let done = net.run_cycles(500_000);
        assert!(done, "closed-loop run must drain");
        assert!(net.is_done());
        let report = net.report();
        let txn = report.txn.expect("closed-loop runs carry a txn summary");
        assert_eq!(txn.issued, 16 * 4);
        assert_eq!(txn.completed, txn.issued, "healthy network completes everything");
        assert_eq!(txn.failed, 0);
        assert_eq!(txn.shed, 0);
        assert_eq!(txn.in_flight, 0);
        assert_eq!(txn.violations, 0, "conservation must hold");
        assert!(txn.orphans.is_empty());
        // Requests + replies both traverse the network.
        assert!(report.stats.packets_injected >= 2 * txn.issued);
        // Open-loop runs carry no summary.
        let (open, _) = run(quiet_config(), WorkloadSpec::uniform(0.02, 2));
        assert!(open.txn.is_none());
    }

    /// Regression for the dependency-window leak: packets that die against a
    /// dead router (dropped at injection or mid-flight) must decrement the
    /// source's `outstanding` count, or window-gated sources wedge forever
    /// and the run never drains. The transactions aimed at the dead node
    /// must exhaust their retries and land in `failed` — conserved, not
    /// leaked.
    #[test]
    fn dead_router_mesh_frees_the_dependency_window_and_conserves() {
        let mut cfg = small_reqreply_cfg();
        cfg.fault_aware_routing = true;
        cfg.hard_faults = noc_fault::HardFaultScenario::dead_routers(4, 4, 2, 5, 0);
        let rr = ReqReplySpec {
            reply_timeout: 300,
            max_retries: 2,
            backoff_base: 16,
            backoff_cap: 64,
            ..ReqReplySpec::default()
        };
        let mut spec = WorkloadSpec::reqreply(0.1, 3, rr);
        spec.window = 2; // tight window: any outstanding leak wedges the source
        let mut net = Network::new(cfg, spec, 11);
        let done = net.run_cycles(500_000);
        assert!(done, "run must drain despite dead routers");
        assert!(net.stall().is_none(), "no watchdog stall: drops free the window");
        let report = net.report();
        assert!(report.stats.packets_dropped > 0, "dead routers must cost packets");
        let txn = report.txn.expect("txn summary");
        assert!(txn.failed > 0, "transactions against dead nodes must fail");
        assert!(txn.retries > 0, "failures only after bounded retries");
        assert_eq!(txn.violations, 0, "every loss is accounted: no conservation violation");
        assert!(txn.orphans.is_empty());
        assert_eq!(txn.in_flight, 0);
        assert_eq!(txn.issued, txn.completed + txn.failed + txn.shed);
        for (node, &o) in net.outstanding.iter().enumerate() {
            assert_eq!(o, 0, "node {node} leaked dependency-window slots");
        }
    }

    /// Sources idle while a server works on their reply have nothing in
    /// flight, so the stall watchdog must not trip even when the service
    /// latency far exceeds the watchdog window (satellite of PR 8's five
    /// watchdog cases).
    #[test]
    fn watchdog_tolerates_sources_awaiting_replies() {
        let mut cfg = quiet_config();
        cfg.width = 2;
        cfg.height = 2;
        cfg.stall_window = 50;
        let rr = ReqReplySpec {
            service_latency: 400, // 8× the watchdog window
            reply_timeout: 2000,
            ..ReqReplySpec::default()
        };
        let spec = WorkloadSpec::reqreply(1.0, 1, rr);
        let mut net = Network::new(cfg, spec, 3);
        let done = net.run_cycles(100_000);
        assert!(done, "run must drain");
        assert!(net.stall().is_none(), "awaiting-reply idle gaps must not trip the watchdog");
        let txn = net.report().txn.expect("txn summary");
        assert_eq!(txn.completed, txn.issued);
        assert_eq!(txn.violations, 0);
    }

    /// The seeded chaos hook orphans a transaction: the conservation
    /// auditor's counters break by exactly one and the orphan is named in
    /// the report.
    #[test]
    fn chaos_orphan_surfaces_in_the_run_report() {
        let rr = ReqReplySpec { chaos_orphan: Some(0), ..ReqReplySpec::default() };
        let spec = WorkloadSpec::reqreply(0.05, 2, rr);
        let mut net = Network::new(small_reqreply_cfg(), spec, 11);
        net.run_cycles(500_000);
        let txn = net.report().txn.expect("txn summary");
        assert_eq!(txn.violations, 1, "exactly the orphaned transaction is unaccounted");
        assert_eq!(txn.orphans, vec![0], "the orphan is named");
    }

    /// With a tracer installed the transaction lifecycle shows up in the
    /// event stream; without one the workload buffers nothing.
    #[test]
    fn tracer_carries_txn_lifecycle_events() {
        use noc_telemetry::{EventKind, TraceFilter};
        let spec = WorkloadSpec::reqreply(0.05, 2, ReqReplySpec::default());
        let mut net = Network::new(small_reqreply_cfg(), spec, 11);
        net.install_tracer(Tracer::new(1 << 16, TraceFilter::all()));
        let done = net.run_cycles(500_000);
        assert!(done);
        let tracer = net.take_tracer().expect("tracer installed");
        let issued = tracer.count_of(EventKind::TxnIssued);
        let completed = tracer.count_of(EventKind::TxnCompleted);
        assert_eq!(issued as u64, net.report().txn.expect("txn").issued);
        assert_eq!(completed, issued);
    }
}
