//! The simulator side of `noc-journey`: a [`JourneyTracker`] that turns
//! the attribution hook stream into exact span timelines for sampled
//! packets (and leg timelines for sampled transactions).
//!
//! The tracker keeps a moving *cursor* per sampled packet. Every charged
//! hook (pipeline fill, link traversal, bypass latch, hop-NACK stall)
//! first gap-fills `[cursor, now)` with a wait span at the packet's
//! current location — NI-queue wait at the source interface, VC/SA wait
//! inside a router, channel wait on a link — then appends the charged
//! span `[now, now + cost)` and advances the cursor. Because every charge
//! the attribution engine makes has a disjoint, forward-moving time
//! window, the spans tile the packet's lifetime exactly and per-cause
//! sums reproduce the PR-3 components bit-for-bit. A mirror of the
//! attribution arithmetic runs alongside and `debug_assert!`s that
//! equality at every completion.
//!
//! End-to-end retransmission reclassifies the failed generation's spans
//! as `wasted_gen` (keeping their locations, so a Perfetto view still
//! shows *where* the wasted generation travelled) — mirroring how the
//! attribution engine folds the whole window into `retransmission`.
//!
//! Whether a packet or transaction is sampled is a pure seeded hash of
//! its id ([`noc_telemetry::journey_sampled`]), so the sampled set — and
//! every downstream artifact — is identical across serial, parallel, and
//! resumed executions of one seed.

use crate::flit::{Cycle, Flit};
use crate::topology::DIRS;
use noc_telemetry::{
    journey_sampled, HopSpan, JourneyCause, JourneyLoc, JourneyLog, PacketJourney, TxnJourney,
    TxnLeg, TxnLegKind, TxnOutcome,
};
use noc_traffic::{TxnEvent, TxnEventKind};
use std::collections::HashMap;

/// Salt mixed into the seed for transaction sampling so the sampled txn
/// set is independent of the sampled packet set.
const TXN_SAMPLE_SALT: u64 = 0xA076_1D64_78BD_642F;

/// Where a tracked packet currently sits (determines the cause of the
/// next gap-fill wait span).
#[derive(Debug, Clone, Copy)]
enum Residence {
    SourceNi(u16),
    Router(u16),
    Link { from: u16, to: u16 },
}

impl Residence {
    fn loc(self) -> JourneyLoc {
        match self {
            Residence::SourceNi(n) => JourneyLoc::SourceNi(n),
            Residence::Router(r) => JourneyLoc::Router(r),
            Residence::Link { from, to } => JourneyLoc::Link { from, to },
        }
    }

    fn wait_cause(self) -> JourneyCause {
        match self {
            Residence::SourceNi(_) => JourneyCause::NiQueue,
            Residence::Router(_) => JourneyCause::VcSaWait,
            Residence::Link { .. } => JourneyCause::ChannelWait,
        }
    }
}

/// Mirror of the attribution engine's per-packet accumulators, used to
/// debug-assert that span sums reproduce the components exactly.
#[derive(Debug, Default, Clone, Copy)]
struct Mirror {
    gen_start: Cycle,
    gen_traversal: u64,
    gen_bypass: u64,
    gen_retx: u64,
    retx_wasted: u64,
}

/// In-flight journey of one sampled packet.
#[derive(Debug)]
struct Track {
    src: u16,
    dest: u16,
    injected_at: Cycle,
    txn: Option<(u64, u32, bool)>,
    /// One past the end of the last span (time accounted so far).
    cursor: Cycle,
    /// Where the packet's head currently resides.
    at: Residence,
    /// Index of the first span of the current e2e generation.
    gen_first_span: usize,
    head_eject: Option<Cycle>,
    spans: Vec<HopSpan>,
    mirror: Mirror,
}

impl Track {
    /// Gap-fills `[cursor, now)` with a wait span at the current
    /// residence, then advances the cursor to `now`.
    fn wait_until(&mut self, now: Cycle) {
        debug_assert!(self.cursor <= now, "journey cursor moved backwards");
        if now > self.cursor {
            self.spans.push(HopSpan {
                start: self.cursor,
                end: now,
                loc: self.at.loc(),
                cause: self.at.wait_cause(),
            });
            self.cursor = now;
        }
    }

    /// Appends the charged span `[now, now + cost)` and advances.
    fn charge(&mut self, now: Cycle, cost: u64, loc: JourneyLoc, cause: JourneyCause) {
        self.wait_until(now);
        self.spans.push(HopSpan { start: now, end: now + cost, loc, cause });
        self.cursor = now + cost;
    }
}

/// In-flight journey of one sampled transaction.
#[derive(Debug)]
struct TxnTrack {
    client: u16,
    server: u16,
    issued_at: Cycle,
    attempts: u32,
    /// `(start, kind, attempt)` of the currently open leg.
    open: Option<(Cycle, TxnLegKind, u32)>,
    legs: Vec<TxnLeg>,
}

impl TxnTrack {
    fn close_leg(&mut self, now: Cycle) {
        if let Some((start, kind, attempt)) = self.open.take() {
            self.legs.push(TxnLeg { start, end: now.max(start), kind, attempt });
        }
    }

    fn open_leg(&mut self, now: Cycle, kind: TxnLegKind, attempt: u32) {
        self.open = Some((now, kind, attempt));
    }

    fn into_journey(mut self, txn: u64, now: Cycle, outcome: TxnOutcome) -> TxnJourney {
        self.close_leg(now);
        TxnJourney {
            txn,
            client: self.client,
            server: self.server,
            issued_at: self.issued_at,
            resolved_at: now,
            attempts: self.attempts,
            outcome,
            legs: self.legs,
        }
    }
}

/// Deterministic sampled per-packet / per-transaction journey recorder.
#[derive(Debug)]
pub(crate) struct JourneyTracker {
    seed: u64,
    every: u64,
    /// Per channel index: downstream router, or `u16::MAX` on the mesh rim.
    link_dest: Vec<u16>,
    tracks: HashMap<u64, Track>,
    txns: HashMap<u64, TxnTrack>,
    log: JourneyLog,
}

impl JourneyTracker {
    pub(crate) fn new(label: String, seed: u64, every: u64, link_dest: Vec<u16>) -> Self {
        JourneyTracker {
            seed,
            every,
            link_dest,
            tracks: HashMap::new(),
            txns: HashMap::new(),
            log: JourneyLog { label, seed, every, ..JourneyLog::default() },
        }
    }

    fn link_loc(&self, ci: usize) -> JourneyLoc {
        JourneyLoc::Link { from: (ci / DIRS) as u16, to: self.link_dest[ci] }
    }

    pub(crate) fn on_inject(
        &mut self,
        packet: u64,
        src: u16,
        dest: u16,
        now: Cycle,
        txn: Option<(u64, u32, bool)>,
    ) {
        if !journey_sampled(self.seed, packet, self.every) {
            return;
        }
        self.tracks.insert(
            packet,
            Track {
                src,
                dest,
                injected_at: now,
                txn,
                cursor: now,
                at: Residence::SourceNi(src),
                gen_first_span: 0,
                head_eject: None,
                spans: Vec::new(),
                mirror: Mirror { gen_start: now, ..Mirror::default() },
            },
        );
    }

    /// A flit crossed channel `ci` (granted at `now`, arriving at
    /// `now + cost`). Only the head flit carries the packet's clock, as in
    /// the attribution engine.
    pub(crate) fn on_link_flit(
        &mut self,
        ci: usize,
        flit: &Flit,
        cost: u64,
        bypass: bool,
        now: Cycle,
    ) {
        if !flit.is_head() {
            return;
        }
        let loc = self.link_loc(ci);
        if let Some(t) = self.tracks.get_mut(&flit.packet_id) {
            let cause = if bypass { JourneyCause::Bypass } else { JourneyCause::Link };
            t.charge(now, cost, loc, cause);
            if bypass {
                t.mirror.gen_bypass += cost;
            } else {
                t.mirror.gen_traversal += cost;
            }
            t.at = match loc {
                JourneyLoc::Link { from, to } => Residence::Link { from, to },
                _ => unreachable!(),
            };
        }
    }

    /// A head flit was delivered into an input VC at `router` and charged
    /// the pipeline fill.
    pub(crate) fn on_pipeline(&mut self, packet: u64, router: u16, cost: u64, now: Cycle) {
        if let Some(t) = self.tracks.get_mut(&packet) {
            t.charge(now, cost, JourneyLoc::Router(router), JourneyCause::Pipeline);
            t.mirror.gen_traversal += cost;
            t.at = Residence::Router(router);
        }
    }

    /// A hop-NACK made the stored copy on channel `ci` re-traverse.
    pub(crate) fn on_hop_retx(&mut self, ci: usize, flit: &Flit, cost: u64, now: Cycle) {
        if !flit.is_head() {
            return;
        }
        let loc = self.link_loc(ci);
        if let Some(t) = self.tracks.get_mut(&flit.packet_id) {
            t.charge(now, cost, loc, JourneyCause::HopRetx);
            t.mirror.gen_retx += cost;
            t.at = match loc {
                JourneyLoc::Link { from, to } => Residence::Link { from, to },
                _ => unreachable!(),
            };
        }
    }

    /// The whole packet restarts from the source: the current generation's
    /// spans become `wasted_gen` (locations preserved) and the clock
    /// rebases at `now`, exactly like the attribution engine's
    /// `on_e2e_retx`.
    pub(crate) fn on_e2e_retx(&mut self, packet: u64, now: Cycle) {
        if let Some(t) = self.tracks.get_mut(&packet) {
            // Charges land at grant time but extend into the future; the
            // wasted window is exactly `[gen_start, now)`, so clip spans
            // that overshoot the failure cycle (the attribution engine
            // resets its per-generation accumulators the same way).
            let first = t.gen_first_span;
            let mut i = first;
            while i < t.spans.len() {
                let s = &mut t.spans[i];
                if s.cause.is_marker() {
                    i += 1;
                } else if s.start >= now {
                    t.spans.remove(i);
                } else {
                    s.cause = JourneyCause::WastedGen;
                    s.end = s.end.min(now);
                    i += 1;
                }
            }
            t.cursor = t.cursor.min(now);
            if now > t.cursor {
                let loc = t.at.loc();
                t.spans.push(HopSpan {
                    start: t.cursor,
                    end: now,
                    loc,
                    cause: JourneyCause::WastedGen,
                });
            }
            t.cursor = now;
            t.gen_first_span = t.spans.len();
            t.at = Residence::SourceNi(t.src);
            t.head_eject = None;
            t.mirror.retx_wasted += now.saturating_sub(t.mirror.gen_start);
            t.mirror.gen_start = now;
            t.mirror.gen_traversal = 0;
            t.mirror.gen_bypass = 0;
            t.mirror.gen_retx = 0;
        }
    }

    /// The head flit was consumed at the destination; tail flits drain
    /// behind it (serialization).
    pub(crate) fn on_head_eject(&mut self, packet: u64, now: Cycle) {
        if let Some(t) = self.tracks.get_mut(&packet) {
            t.wait_until(now);
            let dest = t.dest;
            t.at = Residence::Router(dest);
            t.head_eject = Some(now);
        }
    }

    /// The tail flit was consumed at `now`; the packet finishes at
    /// `now + 1` with measured `latency`. Returns the finished journey for
    /// optional forwarding (the blackbox's slowest-journeys ring).
    pub(crate) fn on_complete(
        &mut self,
        packet: u64,
        now: Cycle,
        latency: u64,
    ) -> Option<&PacketJourney> {
        let mut t = self.tracks.remove(&packet)?;
        let he = t.head_eject.unwrap_or(now);
        t.wait_until(he);
        if now > he {
            t.spans.push(HopSpan {
                start: he,
                end: now,
                loc: JourneyLoc::Router(t.dest),
                cause: JourneyCause::Serialization,
            });
        }
        t.spans.push(HopSpan {
            start: now,
            end: now + 1,
            loc: JourneyLoc::Router(t.dest),
            cause: JourneyCause::Ejection,
        });
        t.cursor = now + 1;
        let journey = PacketJourney {
            packet,
            src: t.src,
            dest: t.dest,
            injected_at: t.injected_at,
            delivered_at: now + 1,
            latency,
            txn: t.txn,
            spans: t.spans,
        };
        #[cfg(debug_assertions)]
        {
            // The span timeline must reproduce the attribution components
            // exactly (the mirror replicates `Attribution`'s arithmetic).
            let c = journey.components();
            let serialization = now.saturating_sub(he);
            let retransmission = t.mirror.retx_wasted + t.mirror.gen_retx;
            let non_queuing =
                t.mirror.gen_traversal + serialization + retransmission + t.mirror.gen_bypass + 1;
            debug_assert_eq!(c.traversal, t.mirror.gen_traversal, "packet {packet} traversal");
            debug_assert_eq!(c.serialization, serialization, "packet {packet} serialization");
            debug_assert_eq!(c.retransmission, retransmission, "packet {packet} retransmission");
            debug_assert_eq!(c.bypass, t.mirror.gen_bypass, "packet {packet} bypass");
            debug_assert_eq!(c.ejection, 1, "packet {packet} ejection");
            debug_assert_eq!(
                c.queuing,
                latency.saturating_sub(non_queuing),
                "packet {packet} queuing residual"
            );
            debug_assert_eq!(c.total(), latency, "packet {packet} span tiling");
        }
        self.log.packets.push(journey);
        self.log.packets.last()
    }

    /// The packet was dropped before delivery; its journey is discarded
    /// (counted, so the log states what it lost).
    pub(crate) fn on_drop(&mut self, packet: u64) {
        if self.tracks.remove(&packet).is_some() {
            self.log.dropped_packets += 1;
        }
    }

    /// Zero-duration marker: the packet left its XY route at `router`.
    pub(crate) fn on_reroute(&mut self, packet: u64, router: u16, now: Cycle) {
        if let Some(t) = self.tracks.get_mut(&packet) {
            t.spans.push(HopSpan {
                start: now,
                end: now,
                loc: JourneyLoc::Router(router),
                cause: JourneyCause::Reroute,
            });
        }
    }

    /// Zero-duration marker: ECC corrected corruption at `router`.
    pub(crate) fn on_ecc_corrected(&mut self, packet: u64, router: u16, now: Cycle) {
        if let Some(t) = self.tracks.get_mut(&packet) {
            t.spans.push(HopSpan {
                start: now,
                end: now,
                loc: JourneyLoc::Router(router),
                cause: JourneyCause::EccCorrected,
            });
        }
    }

    /// Feeds one drained transaction-lifecycle event into the sampled
    /// transaction tracks.
    pub(crate) fn on_txn_event(&mut self, ev: &TxnEvent) {
        if !journey_sampled(self.seed ^ TXN_SAMPLE_SALT, ev.txn, self.every) {
            return;
        }
        match ev.kind {
            TxnEventKind::Issued => {
                let mut track = TxnTrack {
                    client: ev.node as u16,
                    server: ev.peer as u16,
                    issued_at: ev.cycle,
                    attempts: 1,
                    open: None,
                    legs: Vec::new(),
                };
                track.open_leg(ev.cycle, TxnLegKind::InFlight, 1);
                self.txns.insert(ev.txn, track);
            }
            TxnEventKind::TimedOut => {
                if let Some(t) = self.txns.get_mut(&ev.txn) {
                    t.close_leg(ev.cycle);
                    t.open_leg(ev.cycle, TxnLegKind::Backoff, ev.attempt);
                }
            }
            TxnEventKind::Retried => {
                if let Some(t) = self.txns.get_mut(&ev.txn) {
                    t.close_leg(ev.cycle);
                    t.attempts = ev.attempt.max(t.attempts);
                    t.open_leg(ev.cycle, TxnLegKind::InFlight, ev.attempt);
                }
            }
            TxnEventKind::Completed | TxnEventKind::Failed => {
                if let Some(t) = self.txns.remove(&ev.txn) {
                    let outcome = if ev.kind == TxnEventKind::Completed {
                        TxnOutcome::Completed
                    } else {
                        TxnOutcome::Failed
                    };
                    self.log.txns.push(t.into_journey(ev.txn, ev.cycle, outcome));
                }
            }
            TxnEventKind::Shed => {
                let track = self.txns.remove(&ev.txn).unwrap_or(TxnTrack {
                    client: ev.node as u16,
                    server: ev.peer as u16,
                    issued_at: ev.cycle,
                    attempts: 0,
                    open: None,
                    legs: Vec::new(),
                });
                self.log.txns.push(track.into_journey(ev.txn, ev.cycle, TxnOutcome::Shed));
            }
        }
    }

    /// Closes the log at `now`: in-flight packets are counted as
    /// unfinished, open transactions close as unresolved, and transactions
    /// are ordered by id so the artifact is deterministic.
    pub(crate) fn finish(mut self, now: Cycle) -> JourneyLog {
        self.log.unfinished_packets = self.tracks.len() as u64;
        let mut open: Vec<(u64, TxnTrack)> = self.txns.drain().collect();
        open.sort_by_key(|(id, _)| *id);
        for (id, t) in open {
            self.log.txns.push(t.into_journey(id, now, TxnOutcome::Unresolved));
        }
        self.log.txns.sort_by_key(|t| t.txn);
        self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::make_packet;

    fn tracker(every: u64) -> JourneyTracker {
        // 2x2 mesh worth of fake link destinations: ci = router*4 + dir.
        JourneyTracker::new("test".to_owned(), 9, every, vec![u16::MAX; 16])
    }

    fn head(packet: u64) -> Flit {
        make_packet(packet, packet * 4, 0, 1, 0)[0]
    }

    #[test]
    fn spans_tile_the_packet_lifetime() {
        let mut j = tracker(1);
        let h = head(7);
        j.on_inject(7, 0, 1, 10, None);
        j.on_pipeline(7, 0, 4, 13); // 3 cycles NI-queue wait first
        j.on_link_flit(0, &h, 2, false, 20); // 3 cycles VC/SA wait
        j.on_pipeline(7, 1, 4, 22);
        j.on_head_eject(7, 30);
        let latency = 34 + 1 - 10;
        let journey = j.on_complete(7, 34, latency).expect("sampled").clone();
        let c = journey.components();
        assert_eq!(c.total(), latency);
        assert_eq!(c.traversal, 4 + 2 + 4);
        assert_eq!(c.serialization, 4);
        assert_eq!(c.ejection, 1);
        assert_eq!(c.queuing, latency - (10 + 4 + 1));
        // Non-marker spans tile [injected_at, delivered_at) exactly.
        let mut cursor = journey.injected_at;
        for s in journey.spans.iter().filter(|s| !s.cause.is_marker()) {
            assert_eq!(s.start, cursor);
            cursor = s.end;
        }
        assert_eq!(cursor, journey.delivered_at);
    }

    #[test]
    fn e2e_retx_reclassifies_the_failed_generation() {
        let mut j = tracker(1);
        let h = head(3);
        j.on_inject(3, 0, 1, 0, None);
        j.on_pipeline(3, 0, 4, 0);
        j.on_link_flit(0, &h, 2, false, 6);
        j.on_head_eject(3, 12);
        j.on_e2e_retx(3, 15); // CRC failed at the destination
        j.on_pipeline(3, 0, 4, 20);
        j.on_link_flit(0, &h, 2, false, 26);
        j.on_head_eject(3, 30);
        let latency = 33 + 1;
        let journey = j.on_complete(3, 33, latency).expect("sampled").clone();
        let c = journey.components();
        assert_eq!(c.retransmission, 15, "whole failed generation is wasted");
        assert_eq!(c.traversal, 6, "only the delivering generation counts");
        assert_eq!(c.total(), latency);
        let wasted: u64 = journey
            .spans
            .iter()
            .filter(|s| s.cause == JourneyCause::WastedGen)
            .map(HopSpan::duration)
            .sum();
        assert_eq!(wasted, 15);
    }

    #[test]
    fn e2e_retx_clips_charges_that_overshoot_the_failure() {
        let mut j = tracker(1);
        let h = head(4);
        j.on_inject(4, 0, 1, 0, None);
        j.on_pipeline(4, 0, 4, 0);
        j.on_link_flit(0, &h, 5, false, 10); // charge [10, 15)...
        j.on_e2e_retx(4, 12); // ...but the NACK lands mid-traversal
        j.on_pipeline(4, 0, 4, 20);
        j.on_head_eject(4, 30);
        let latency = 30 + 1;
        // `on_complete` debug-asserts span sums == mirror components.
        let journey = j.on_complete(4, 30, latency).expect("sampled").clone();
        let c = journey.components();
        assert_eq!(c.retransmission, 12, "wasted window is [0, 12) exactly");
        assert_eq!(c.traversal, 4, "only the delivering generation counts");
        assert_eq!(c.total(), latency);
    }

    #[test]
    fn sampling_gates_tracking_and_drops_count() {
        let mut j = tracker(0); // every = 0: nothing sampled
        j.on_inject(1, 0, 1, 0, None);
        assert!(j.on_complete(1, 5, 6).is_none());
        let mut j = tracker(1);
        j.on_inject(2, 0, 1, 0, None);
        j.on_drop(2);
        let log = j.finish(10);
        assert_eq!(log.dropped_packets, 1);
        assert!(log.packets.is_empty());
    }

    #[test]
    fn txn_events_become_leg_timelines() {
        let mut j = tracker(1);
        let ev = |cycle, attempt, kind| TxnEvent { cycle, node: 2, txn: 5, peer: 9, attempt, kind };
        j.on_txn_event(&ev(10, 1, TxnEventKind::Issued));
        j.on_txn_event(&ev(50, 1, TxnEventKind::TimedOut));
        j.on_txn_event(&ev(60, 2, TxnEventKind::Retried));
        j.on_txn_event(&ev(90, 2, TxnEventKind::Completed));
        let log = j.finish(100);
        assert_eq!(log.txns.len(), 1);
        let t = &log.txns[0];
        assert_eq!(t.completion_cycles(), 80);
        assert_eq!(t.attempts, 2);
        assert_eq!(t.outcome, TxnOutcome::Completed);
        assert_eq!(
            t.legs,
            vec![
                TxnLeg { start: 10, end: 50, kind: TxnLegKind::InFlight, attempt: 1 },
                // The backoff leg carries the attempt that timed out.
                TxnLeg { start: 50, end: 60, kind: TxnLegKind::Backoff, attempt: 1 },
                TxnLeg { start: 60, end: 90, kind: TxnLegKind::InFlight, attempt: 2 },
            ]
        );
    }

    #[test]
    fn unresolved_txns_close_at_finish() {
        let mut j = tracker(1);
        j.on_txn_event(&TxnEvent {
            cycle: 10,
            node: 0,
            txn: 1,
            peer: 3,
            attempt: 1,
            kind: TxnEventKind::Issued,
        });
        let log = j.finish(40);
        assert_eq!(log.txns[0].outcome, TxnOutcome::Unresolved);
        assert_eq!(log.txns[0].resolved_at, 40);
    }
}
