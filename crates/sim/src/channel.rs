//! Inter-router channels with on-link storage (MFAC / iDEAL / elastic
//! buffers) and relaxed-timing support.
//!
//! A channel is a FIFO of in-flight flits. Entry stamps each flit with the
//! cycle at which it reaches the downstream end (`ready_at`): one cycle for
//! normal links, two under relaxed timing (operation mode 4). A plain wire
//! (`channel_capacity = 0` designs) still pipelines one in-flight flit.
//!
//! When a per-hop decode detects an uncorrectable error, the flit is *not*
//! dropped: the copy held in the re-transmission buffer (MFAC upper link or
//! the upstream router buffer) is resent, modeled by pushing the head flit's
//! `ready_at` out by the re-transmission round-trip latency.

use crate::flit::{Cycle, Flit};
use std::collections::VecDeque;

/// One directed inter-router channel.
#[derive(Debug, Clone)]
pub struct Channel {
    queue: VecDeque<(Flit, Cycle)>,
    capacity: usize,
    /// Relaxed-timing mode (set by the upstream router's directive).
    pub relaxed: bool,
}

impl Channel {
    /// Creates a channel with `channel_capacity` storage stages (a value of
    /// 0 becomes a single wire latch).
    pub fn new(channel_capacity: usize) -> Self {
        Channel { queue: VecDeque::new(), capacity: channel_capacity.max(1), relaxed: false }
    }

    /// Flits currently on the channel.
    pub fn occupancy(&self) -> usize {
        self.queue.len()
    }

    /// Storage capacity in flits.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether a new flit can enter this cycle.
    pub fn has_space(&self) -> bool {
        self.queue.len() < self.capacity
    }

    /// Link traversal latency under the current timing mode.
    pub fn latency(&self) -> u64 {
        if self.relaxed {
            2
        } else {
            1
        }
    }

    /// Pushes a flit onto the channel at `now`.
    ///
    /// # Panics
    ///
    /// Panics if the channel is full (callers must check
    /// [`Channel::has_space`]).
    pub fn push(&mut self, flit: Flit, now: Cycle) {
        self.push_delayed(flit, now, 0);
    }

    /// Pushes a flit with `extra` additional cycles of traversal latency
    /// (the bypass switch path adds a mux/latch stage).
    ///
    /// # Panics
    ///
    /// Panics if the channel is full.
    pub fn push_delayed(&mut self, flit: Flit, now: Cycle, extra: u64) {
        assert!(self.has_space(), "channel overflow");
        self.queue.push_back((flit, now + self.latency() + extra));
    }

    /// The head flit, if it has reached the downstream end by `now`.
    pub fn peek_ready(&self, now: Cycle) -> Option<&Flit> {
        match self.queue.front() {
            Some((flit, ready)) if *ready <= now => Some(flit),
            _ => None,
        }
    }

    /// Removes and returns the ready head flit.
    ///
    /// # Panics
    ///
    /// Panics if the head is absent or not ready (callers must check
    /// [`Channel::peek_ready`]).
    pub fn pop_ready(&mut self, now: Cycle) -> Flit {
        match self.queue.front() {
            Some((_, ready)) if *ready <= now => self.queue.pop_front().expect("head exists").0,
            _ => panic!("no ready flit to pop"),
        }
    }

    /// Delays the head flit by `delay` cycles (per-hop re-transmission after
    /// a NACK: the stored copy re-traverses the link).
    ///
    /// # Panics
    ///
    /// Panics if the channel is empty.
    pub fn delay_head(&mut self, now: Cycle, delay: u64) {
        let head = self.queue.front_mut().expect("cannot delay empty channel");
        head.1 = now + delay;
        head.0.retx += 1;
    }

    /// Finds the first flit (front to back) that has arrived by `now`, is
    /// not preceded by a flit of the same packet (per-packet order must be
    /// preserved), and satisfies `deliverable`. Returns its index.
    ///
    /// This is the paper's dynamic buffer allocation via the unified BST
    /// (§3.1.2): blocked packets do not head-of-line-block other packets
    /// stored on the channel.
    pub fn scan_deliverable<F>(&self, now: Cycle, mut deliverable: F) -> Option<usize>
    where
        F: FnMut(&Flit) -> bool,
    {
        let mut seen: Vec<u64> = Vec::new();
        for (i, (flit, ready)) in self.queue.iter().enumerate() {
            if seen.contains(&flit.packet_id) {
                continue; // an earlier flit of this packet is still queued
            }
            seen.push(flit.packet_id);
            if *ready <= now && deliverable(flit) {
                return Some(i);
            }
        }
        None
    }

    /// Flit at `index` (used with [`Channel::scan_deliverable`]).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn get(&self, index: usize) -> &Flit {
        &self.queue[index].0
    }

    /// Removes and returns the flit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn remove_at(&mut self, index: usize) -> Flit {
        self.queue.remove(index).expect("index in range").0
    }

    /// Delays the flit at `index` by `delay` cycles (per-hop NACK
    /// re-transmission).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn delay_at(&mut self, index: usize, now: Cycle, delay: u64) {
        let entry = &mut self.queue[index];
        entry.1 = now + delay;
        entry.0.retx += 1;
        // The re-transmitted copy comes from the clean re-transmission
        // buffer, so accumulated codeword corruption is gone.
        entry.0.hop_flips = 0;
    }

    /// Number of flits stored past their arrival time (waiting for the
    /// downstream router), i.e. flits occupying storage stages.
    pub fn stored(&self, now: Cycle) -> usize {
        self.queue.iter().filter(|(_, ready)| *ready <= now).count()
    }

    /// Drains every flit (used only by tests and teardown accounting).
    pub fn drain_all(&mut self) -> Vec<Flit> {
        self.queue.drain(..).map(|(f, _)| f).collect()
    }

    /// Removes every flit of `packet` (hard-fault salvage/drop support).
    /// Returns the number of flits removed.
    pub fn purge_packet(&mut self, packet: u64) -> usize {
        let before = self.queue.len();
        self.queue.retain(|(f, _)| f.packet_id != packet);
        before - self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::make_packet;

    fn flit(id: u64) -> Flit {
        let mut f = make_packet(id, id * 4, 0, 1, 0)[0];
        f.id = id;
        f
    }

    #[test]
    fn wire_latch_pipelines_one_flit() {
        let mut ch = Channel::new(0);
        assert_eq!(ch.capacity(), 1);
        assert!(ch.has_space());
        ch.push(flit(1), 10);
        assert!(!ch.has_space());
        assert!(ch.peek_ready(10).is_none(), "one-cycle latency");
        assert!(ch.peek_ready(11).is_some());
        let f = ch.pop_ready(11);
        assert_eq!(f.packet_id, 1);
        assert!(ch.has_space());
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut ch = Channel::new(4);
        for i in 0..4 {
            ch.push(flit(i), i);
        }
        for i in 0..4 {
            assert_eq!(ch.pop_ready(100).packet_id, i);
        }
    }

    #[test]
    fn relaxed_mode_doubles_latency() {
        let mut ch = Channel::new(2);
        ch.relaxed = true;
        ch.push(flit(1), 0);
        assert!(ch.peek_ready(1).is_none());
        assert!(ch.peek_ready(2).is_some());
    }

    #[test]
    fn delay_head_models_retransmission() {
        let mut ch = Channel::new(2);
        ch.push(flit(1), 0);
        assert!(ch.peek_ready(1).is_some());
        ch.delay_head(1, 4);
        assert!(ch.peek_ready(4).is_none());
        let f = ch.pop_ready(5);
        assert_eq!(f.retx, 1);
    }

    #[test]
    fn stored_counts_arrived_flits() {
        let mut ch = Channel::new(8);
        ch.push(flit(1), 0);
        ch.push(flit(2), 0);
        ch.push(flit(3), 5);
        assert_eq!(ch.stored(1), 2);
        assert_eq!(ch.stored(6), 3);
        assert_eq!(ch.stored(0), 0);
    }

    #[test]
    #[should_panic(expected = "channel overflow")]
    fn overflow_panics() {
        let mut ch = Channel::new(1);
        ch.push(flit(1), 0);
        ch.push(flit(2), 0);
    }

    #[test]
    fn scan_skips_blocked_packets_but_preserves_per_packet_order() {
        let mut ch = Channel::new(8);
        // Packet 1: head then body. Packet 2: head. All ready.
        let p1 = make_packet(1, 0, 0, 1, 0);
        let p2 = make_packet(2, 10, 0, 1, 0);
        ch.push(p1[0], 0); // idx 0: P1 head
        ch.push(p1[1], 0); // idx 1: P1 body
        ch.push(p2[0], 0); // idx 2: P2 head
                           // Predicate rejects P1 entirely: the scan must NOT return P1's body
                           // (same-packet order) but may return P2's head.
        let idx = ch.scan_deliverable(10, |f| f.packet_id != 1);
        assert_eq!(idx, Some(2));
        // Predicate accepts everything: the front wins.
        let idx = ch.scan_deliverable(10, |_| true);
        assert_eq!(idx, Some(0));
    }

    #[test]
    fn scan_respects_ready_times() {
        let mut ch = Channel::new(4);
        ch.push(flit(1), 100); // ready at 101
        assert_eq!(ch.scan_deliverable(100, |_| true), None);
        assert_eq!(ch.scan_deliverable(101, |_| true), Some(0));
    }

    #[test]
    fn remove_at_preserves_remaining_order() {
        let mut ch = Channel::new(4);
        for i in 0..3 {
            ch.push(flit(i), 0);
        }
        let f = ch.remove_at(1);
        assert_eq!(f.packet_id, 1);
        assert_eq!(ch.get(0).packet_id, 0);
        assert_eq!(ch.get(1).packet_id, 2);
        assert_eq!(ch.occupancy(), 2);
    }

    #[test]
    fn delay_at_clears_codeword_corruption() {
        let mut ch = Channel::new(2);
        let mut f = flit(1);
        f.hop_flips = 3;
        ch.push(f, 0);
        ch.delay_at(0, 1, 4);
        assert_eq!(ch.get(0).hop_flips, 0, "retransmitted copy is clean");
        assert_eq!(ch.get(0).retx, 1);
    }

    #[test]
    fn relaxed_toggle_affects_only_new_pushes() {
        let mut ch = Channel::new(4);
        ch.push(flit(1), 0); // normal: ready at 1
        ch.relaxed = true;
        ch.push(flit(2), 0); // relaxed: ready at 2
        assert!(ch.scan_deliverable(1, |f| f.packet_id == 2).is_none());
        assert!(ch.scan_deliverable(2, |f| f.packet_id == 2).is_some());
        assert!(ch.peek_ready(1).is_some(), "first flit unaffected");
    }
}
