//! Hard-fault resilience: permanent link/router failures, fault-aware
//! rerouting, the bounded retransmission escalation ladder, and the stall
//! watchdog — exercised through the public `Network` API.

use noc_sim::{
    HardFault, HardFaultKind, HardFaultScenario, HardFaultTarget, Mesh, Network, Port, SimConfig,
};
use noc_traffic::WorkloadSpec;

fn quiet() -> SimConfig {
    let mut cfg = SimConfig::default();
    cfg.varius.base_rate = 0.0;
    cfg.varius.min_rate = 0.0;
    cfg
}

/// IntelliNoC-flavoured substrate: MFAC channel storage, bypass, e2e CRC.
fn mfac() -> SimConfig {
    let mut cfg = quiet();
    cfg.channel_capacity = 8;
    cfg.bypass_enabled = true;
    cfg.bypass_during_wake = true;
    cfg.mfac_retx = true;
    cfg.e2e_crc = true;
    cfg.has_bst = true;
    cfg
}

fn run(mut cfg: SimConfig, workload: WorkloadSpec, seed: u64) -> Network {
    cfg.seed = seed;
    let mut net = Network::new(cfg, workload, seed);
    assert!(net.run_cycles(2_000_000), "run must terminate (done or watchdog)");
    net
}

fn assert_accounted(net: &Network, label: &str) {
    let s = net.stats();
    assert_eq!(
        s.packets_delivered + s.packets_dropped,
        s.packets_injected,
        "{label}: {} delivered + {} dropped != {} injected (stall: {:?})",
        s.packets_delivered,
        s.packets_dropped,
        s.packets_injected,
        net.stall().map(|st| &st.blocked),
    );
}

fn link_fault(router: u32, dir: u8, at: u64) -> HardFaultScenario {
    HardFaultScenario {
        faults: vec![HardFault {
            at,
            target: HardFaultTarget::Link { router, dir },
            kind: HardFaultKind::FailStop,
        }],
    }
}

/// Acceptance criterion: any single permanent link failure at t=0 on the
/// 8×8 mesh under uniform-random traffic → rerouting delivers 100% of
/// packets. Checked exhaustively over every physical link, on both the
/// baseline substrate and the MFAC/bypass substrate.
#[test]
fn every_single_link_failure_delivers_all_packets() {
    let mesh = Mesh::new(8, 8);
    for r in 0..mesh.nodes() {
        for (di, dir) in [Port::XPlus, Port::YPlus].into_iter().enumerate() {
            if mesh.neighbor(r, dir).is_none() {
                continue;
            }
            let dir = if di == 0 { 0u8 } else { 2u8 };
            for base in [quiet(), mfac()] {
                let mut cfg = base;
                cfg.fault_aware_routing = true;
                cfg.hard_faults = link_fault(r as u32, dir, 0);
                let net = run(cfg, WorkloadSpec::uniform(0.02, 2), 7);
                let s = net.stats();
                assert!(net.stall().is_none(), "link {r}/{dir}: watchdog fired");
                assert_eq!(s.packets_dropped, 0, "link {r}/{dir}: dropped");
                assert_eq!(s.packets_delivered, s.packets_injected, "link {r}/{dir}: lost packets");
            }
        }
    }
}

/// With rerouting disabled the same scenario must terminate via the
/// drop/watchdog escalation instead of hanging forever.
#[test]
fn no_reroute_terminates_via_drop_or_watchdog() {
    let mut cfg = quiet();
    cfg.fault_aware_routing = false;
    cfg.stall_window = 5_000;
    // Interior link: XY routes will pile into it from both sides.
    cfg.hard_faults = link_fault(27, 0, 0);
    let mut net = Network::new(cfg, WorkloadSpec::uniform(0.02, 4), 3);
    assert!(net.run_cycles(2_000_000), "watchdog must end the run");
    let s = net.stats();
    assert!(
        net.stall().is_some() || s.packets_dropped > 0,
        "expected a stall report or accounted drops, got neither"
    );
    if let Some(st) = net.stall() {
        assert!(st.in_flight > 0);
        // `blocked` names channel-front flits; with XY pinned the wedge can
        // also sit wholly inside router VCs, which the full dump covers.
        assert!(!st.dump.is_empty(), "stall report must carry a state dump");
        assert_eq!(st.window, 5_000);
    }
}

/// A router that dies mid-run takes its NI and in-flight packets with it;
/// everything else must be rerouted or salvaged, and packets to/from the
/// dead node become accounted drops — never silent losses or hangs.
#[test]
fn midrun_router_failure_accounts_every_packet() {
    for base in [quiet(), mfac()] {
        let mut cfg = base;
        cfg.fault_aware_routing = true;
        cfg.hard_faults = HardFaultScenario::dead_routers(8, 8, 1, 1, 300);
        let net = run(cfg, WorkloadSpec::uniform(0.02, 10), 1);
        assert!(net.stall().is_none(), "watchdog fired: {:?}", net.stall().map(|s| &s.blocked));
        assert_accounted(&net, "router-fail");
        assert!(net.stats().packets_dropped > 0, "dead NI must cost some packets");
    }
}

/// Two links dying mid-run while traffic is flowing: packets in flight at
/// the transition must be salvaged (e2e retransmission) or rerouted.
#[test]
fn midrun_link_failures_account_every_packet() {
    let mut cfg = quiet();
    cfg.fault_aware_routing = true;
    cfg.hard_faults = HardFaultScenario::dead_links(8, 8, 2, 5, 400);
    let net = run(cfg, WorkloadSpec::uniform(0.03, 10), 5);
    assert!(net.stall().is_none(), "watchdog fired: {:?}", net.stall().map(|s| &s.blocked));
    let s = net.stats();
    assert_eq!(s.packets_dropped, 0, "mesh stays connected: no drops expected");
    assert_eq!(s.packets_delivered, s.packets_injected);
    assert!(s.reroutes > 0, "detours must be taken");
}

/// Intermittent (flapping) outages stall traffic but never drop it: the
/// mesh keeps full delivery across repeated down/up transitions.
#[test]
fn flapping_links_deliver_everything() {
    let mut cfg = quiet();
    cfg.fault_aware_routing = true;
    cfg.hard_faults = HardFaultScenario::flapping_links(8, 8, 2, 9, 0, 200, 40);
    let net = run(cfg, WorkloadSpec::uniform(0.02, 10), 9);
    assert!(net.stall().is_none(), "watchdog fired: {:?}", net.stall().map(|s| &s.blocked));
    let s = net.stats();
    assert_eq!(s.packets_delivered + s.packets_dropped, s.packets_injected);
    assert_eq!(s.packets_dropped, 0, "flapping must not cause drops");
}

/// Escalation ladder under a brutal transient-error rate: hop retries hit
/// `max_retx`, escalate to e2e recovery, and finally to accounted drops —
/// the run terminates with every packet delivered or accounted.
#[test]
fn extreme_error_rates_terminate_with_full_accounting() {
    for rate in [0.05, 0.2, 0.5] {
        let mut cfg = quiet();
        cfg.max_retx = 3;
        cfg.stall_window = 20_000;
        cfg.seed = 11;
        let mut net = Network::new(cfg, WorkloadSpec::uniform(0.01, 3), 11);
        net.set_error_rate_override(Some(rate));
        assert!(net.run_cycles(5_000_000), "rate {rate}: run must terminate");
        assert_accounted(&net, &format!("error rate {rate}"));
        let s = net.stats();
        assert!(
            s.hop_retx_events + s.e2e_retx_packets > 0,
            "rate {rate}: the ladder must actually engage"
        );
    }
}

/// `max_retx = 0` keeps the legacy unbounded-retry semantics: no drops,
/// every packet eventually delivered even under heavy noise.
#[test]
fn unbounded_retx_never_drops() {
    let mut cfg = quiet();
    cfg.max_retx = 0;
    cfg.seed = 13;
    let mut net = Network::new(cfg, WorkloadSpec::uniform(0.01, 2), 13);
    net.set_error_rate_override(Some(0.02));
    assert!(net.run_cycles(5_000_000));
    let s = net.stats();
    assert_eq!(s.packets_dropped, 0);
    assert_eq!(s.packets_delivered, s.packets_injected);
}

/// Hard-fault runs are deterministic: same seed and scenario, same stats.
#[test]
fn fault_runs_are_deterministic() {
    let go = || {
        let mut cfg = quiet();
        cfg.fault_aware_routing = true;
        cfg.hard_faults = HardFaultScenario::dead_links(8, 8, 4, 21, 100)
            .merged(HardFaultScenario::flapping_links(8, 8, 1, 21, 0, 300, 60));
        run(cfg, WorkloadSpec::uniform(0.02, 8), 21)
    };
    let a = go();
    let b = go();
    assert_eq!(a.stats(), b.stats());
}

mod rerouting_properties {
    use super::*;
    use noc_sim::HealthRouter;
    use proptest::prelude::*;

    /// Follows the health router hop by hop; panics on dead links/routers
    /// or cycles. Returns hops taken, or None when the route is refused.
    fn walk(h: &HealthRouter, mesh: &Mesh, src: usize, dest: usize) -> Option<usize> {
        let mut here = src;
        let mut in_port = Port::Local;
        let mut steps = 0;
        loop {
            let p = h.route(here, dest, in_port)?;
            if p == Port::Local {
                assert_eq!(here, dest, "Local before reaching the destination");
                return Some(steps);
            }
            assert!(h.link_up(here, p), "route uses dead link {here}->{p:?}");
            let next = mesh.neighbor(here, p).expect("route fell off the mesh");
            assert!(h.router_up(next), "route enters dead router {next}");
            in_port = p.opposite();
            here = next;
            steps += 1;
            assert!(steps <= 4 * mesh.nodes(), "route cycles: {src}->{dest}");
        }
    }

    proptest! {
        /// On any residual topology (random link kills), every route the
        /// health map produces from a fresh source is acyclic and ends at
        /// the destination; unreachable pairs are refused, never looped.
        #[test]
        fn routes_never_cycle_under_random_link_failures(
            seed in 0u64..500,
            kills in 0usize..14,
        ) {
            let mesh = Mesh::new(6, 6);
            let mut h = HealthRouter::new(mesh);
            // Deterministic pseudo-random link kills from the seed.
            let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
            for _ in 0..kills {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let r = (x >> 33) as usize % mesh.nodes();
                let dir = if (x >> 13) & 1 == 0 { Port::XPlus } else { Port::YPlus };
                if mesh.neighbor(r, dir).is_some() {
                    h.set_link(r, dir, false);
                }
            }
            h.rebuild();
            for src in 0..mesh.nodes() {
                for dest in 0..mesh.nodes() {
                    let hops = walk(&h, &mesh, src, dest);
                    prop_assert!(
                        hops.is_some() == h.reachable(src, dest),
                        "route presence must match reachability {}->{}", src, dest
                    );
                }
            }
        }

        /// Mid-path states: from any (node, arrival-port) the table either
        /// continues to the destination without cycling or refuses.
        #[test]
        fn continuations_never_cycle(seed in 0u64..200) {
            let mesh = Mesh::new(5, 5);
            let mut h = HealthRouter::new(mesh);
            let mut x = seed.wrapping_mul(0x2545_f491_4f6c_dd1d).wrapping_add(9);
            for _ in 0..6 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let r = (x >> 33) as usize % mesh.nodes();
                let dir = if (x >> 13) & 1 == 0 { Port::XPlus } else { Port::YPlus };
                if mesh.neighbor(r, dir).is_some() {
                    h.set_link(r, dir, false);
                }
            }
            h.rebuild();
            for here in 0..mesh.nodes() {
                for dest in 0..mesh.nodes() {
                    for in_port in [Port::XPlus, Port::XMinus, Port::YPlus, Port::YMinus, Port::Local] {
                        let mut at = here;
                        let mut port = in_port;
                        let mut steps = 0;
                        while let Some(p) = h.route(at, dest, port) {
                            if p == Port::Local {
                                prop_assert_eq!(at, dest);
                                break;
                            }
                            prop_assert!(h.link_up(at, p));
                            at = mesh.neighbor(at, p).expect("on mesh");
                            port = p.opposite();
                            steps += 1;
                            prop_assert!(steps <= 4 * mesh.nodes(), "cycle from ({}, {:?})", here, in_port);
                        }
                    }
                }
            }
        }
    }
}
