//! Integration tests for per-flit latency attribution: exact component
//! sums, spatial coverage, and interaction with power gating and
//! re-transmission — all through the public `Network` API.

use noc_ecc::EccScheme;
use noc_sim::{Network, RouterDirective, SimConfig, DIRS};
use noc_traffic::WorkloadSpec;

fn quiet() -> SimConfig {
    let mut cfg = SimConfig::default();
    cfg.varius.base_rate = 0.0;
    cfg.varius.min_rate = 0.0;
    cfg
}

/// Every attributed packet's component breakdown must sum exactly to its
/// measured end-to-end latency, and the totals must sum over all packets.
#[test]
fn components_sum_to_measured_latency() {
    let mut net = Network::new(quiet(), WorkloadSpec::uniform(0.02, 20), 7);
    net.install_attribution();
    assert!(net.attribution_enabled());
    assert!(net.run_cycles(200_000), "uniform workload must drain");
    let art = net.take_attribution().expect("attribution installed");
    let b = &art.breakdown;
    assert_eq!(b.packets, 64 * 20, "all delivered packets attributed");
    assert_eq!(b.records.len(), b.packets as usize);
    let mut total = 0u64;
    for rec in &b.records {
        assert_eq!(
            rec.components.total(),
            rec.latency,
            "packet {} components {:?} != latency {}",
            rec.packet,
            rec.components,
            rec.latency
        );
        total += rec.latency;
    }
    assert_eq!(b.latency_sum, total);
    assert_eq!(b.totals.total(), total);
    // Per-pair rollups cover every record.
    let pair_packets: u64 = b.pairs.values().map(|p| p.packets).sum();
    assert_eq!(pair_packets, b.packets);
}

/// The folded per-link stats must cover exactly the 112 physical links of
/// an 8x8 mesh, and the heat grids one cell per router.
#[test]
fn spatial_outputs_cover_the_mesh() {
    let mut net = Network::new(quiet(), WorkloadSpec::uniform(0.02, 10), 3);
    net.install_attribution();
    assert!(net.run_cycles(200_000));
    let art = net.take_attribution().expect("attribution installed");
    assert_eq!(art.links.len(), 112, "8x8 mesh has 112 physical links");
    let mut seen = std::collections::BTreeSet::new();
    for l in &art.links {
        assert!(l.a < l.b, "links are canonicalized low-high");
        assert!(seen.insert((l.a, l.b)), "duplicate link {},{}", l.a, l.b);
    }
    assert_eq!(art.grids.len(), 4);
    for g in &art.grids {
        assert_eq!(g.width, 8);
        assert_eq!(g.height, 8);
        assert_eq!(g.cells.len(), 64);
    }
    let util = art.grid("router_utilization").expect("utilization grid present");
    assert!(util.cells.iter().sum::<f64>() > 0.0, "traffic flowed somewhere");
    // Total flits on the utilization grid match the directed link counters.
    let link_flits: u64 = art.links.iter().map(|l| l.flits).sum();
    assert!(link_flits > 0);
    assert_eq!(DIRS, 4);
}

/// Attribution stays exact under per-hop soft errors: SECDED detects
/// multi-bit flips, NACKs the stored copy, and the stall lands in the
/// retransmission component and the per-link retx counters.
#[test]
fn hop_retransmission_component_appears_under_errors() {
    let mut cfg = SimConfig::default();
    cfg.varius.base_rate = 5e-4;
    cfg.varius.min_rate = 5e-4;
    let mut net = Network::new(cfg, WorkloadSpec::uniform(0.02, 20), 11);
    let d = RouterDirective { gate: None, scheme: EccScheme::Secded, relaxed: false };
    net.apply_directives(&[d; 64]);
    net.install_attribution();
    assert!(net.run_cycles(400_000));
    let hop_retx = net.stats().hop_retx_events;
    let faulty = net.stats().faulty_traversals;
    assert!(hop_retx > 0, "SECDED at 5e-4 must NACK ({faulty} faulty traversals)");
    let art = net.take_attribution().expect("attribution installed");
    for rec in &art.breakdown.records {
        assert_eq!(rec.components.total(), rec.latency);
    }
    assert!(
        art.breakdown.totals.retransmission > 0,
        "{hop_retx} hop NACKs must charge the retransmission component"
    );
    let link_retx: u64 = art.links.iter().map(|l| l.retx).sum();
    assert!(link_retx > 0, "per-link retx counters must see the NACKs");
}

/// End-to-end CRC failures scrap the whole delivery and re-inject at the
/// source: the wasted generation is charged to retransmission and the
/// packet's `e2e_retx` count records the round trips.
#[test]
fn e2e_retransmission_charges_the_wasted_generation() {
    let mut cfg = SimConfig::default();
    cfg.varius.base_rate = 5e-4;
    cfg.varius.min_rate = 5e-4;
    cfg.e2e_crc = true;
    let mut net = Network::new(cfg, WorkloadSpec::uniform(0.02, 20), 13);
    let d = RouterDirective { gate: None, scheme: EccScheme::Crc, relaxed: false };
    net.apply_directives(&[d; 64]);
    net.install_attribution();
    assert!(net.run_cycles(400_000));
    let e2e = net.stats().e2e_retx_packets;
    assert!(e2e > 0, "e2e CRC at 5e-4 must scrap at least one delivery");
    let art = net.take_attribution().expect("attribution installed");
    let mut retx_packets = 0u64;
    for rec in &art.breakdown.records {
        assert_eq!(rec.components.total(), rec.latency);
        if rec.e2e_retx > 0 {
            retx_packets += 1;
            assert!(
                rec.components.retransmission > 0,
                "packet {} had {} e2e retx but no retransmission charge",
                rec.packet,
                rec.e2e_retx
            );
        }
    }
    assert!(retx_packets > 0, "some delivered packet must carry an e2e retx");
}

/// Gate-residency accumulates when routers are force-gated, and bypass
/// hops are charged to the bypass component.
#[test]
fn gate_residency_and_bypass_show_up_when_gated() {
    let mut cfg = quiet();
    cfg.bypass_enabled = true;
    cfg.bypass_during_wake = true;
    cfg.channel_capacity = 8;
    cfg.vc_depth = 2;
    let mut net = Network::new(cfg, WorkloadSpec::uniform(0.001, 3), 5);
    let d = RouterDirective { gate: Some(true), scheme: EccScheme::None, relaxed: false };
    net.apply_directives(&[d; 64]);
    net.install_attribution();
    assert!(net.run_cycles(400_000));
    let art = net.take_attribution().expect("attribution installed");
    let gate = art.grid("router_gate_residency").expect("gate grid present");
    assert!(gate.cells.iter().sum::<f64>() > 1.0, "force-gated mesh must show gate residency");
    for rec in &art.breakdown.records {
        assert_eq!(rec.components.total(), rec.latency);
    }
    assert!(art.breakdown.totals.bypass > 0, "gated routers must produce bypass hops");
}

/// Taking the artifacts disables further accounting; reinstalling starts
/// fresh.
#[test]
fn take_disables_and_reinstall_resets() {
    let mut net = Network::new(quiet(), WorkloadSpec::uniform(0.01, 2), 1);
    assert!(!net.attribution_enabled());
    assert!(net.take_attribution().is_none());
    net.install_attribution();
    assert!(net.run_cycles(100_000));
    let first = net.take_attribution().expect("installed");
    assert!(first.breakdown.packets > 0);
    assert!(!net.attribution_enabled());
    net.install_attribution();
    let empty = net.take_attribution().expect("reinstalled");
    assert_eq!(empty.breakdown.packets, 0);
}
