//! Behavioral tests for the simulator's paper-specific mechanisms:
//! MFAC storage, power-gating bypass semantics, BST continuation, and the
//! re-transmission machinery — exercised through the public API.

use noc_ecc::EccScheme;
use noc_sim::{GateState, Network, RouterDirective, SimConfig};
use noc_traffic::{SpatialPattern, TraceRecord, TraceReplay, WorkloadSpec};

fn quiet() -> SimConfig {
    let mut cfg = SimConfig::default();
    cfg.varius.base_rate = 0.0;
    cfg.varius.min_rate = 0.0;
    cfg
}

fn gated_config() -> SimConfig {
    let mut cfg = quiet();
    cfg.bypass_enabled = true;
    cfg.bypass_during_wake = true;
    cfg.channel_capacity = 8;
    cfg.vc_depth = 2;
    cfg
}

/// Drives a single packet along a straight row so the whole path can be
/// force-gated and the flit must ride the bypass end-to-end.
#[test]
fn straight_path_flows_through_gated_routers() {
    let cfg = gated_config();
    // Source node 0, destination node 7: pure +X path along row 0.
    let records = vec![TraceRecord { cycle: 200, src: 0, dest: 7, size_flits: 4 }];
    let replay = TraceReplay::new("straight", &records, 64, 4);
    let mut net = Network::with_workload(cfg, Box::new(replay));
    let d = RouterDirective { gate: Some(true), scheme: EccScheme::None, relaxed: false };
    net.apply_directives(&[d; 64]);
    assert!(net.run_cycles(100_000), "straight bypass path must drain");
    assert_eq!(net.stats().packets_delivered, 1);
    // Everything was idle except the one packet: routers spent most cycles
    // gated.
    assert!(
        net.stats().gated_router_cycles > 40 * net.stats().cycles,
        "gated {} of {}x64 router-cycles",
        net.stats().gated_router_cycles,
        net.stats().cycles
    );
}

/// A turning packet cannot use the crossbar-less bypass: the turn router
/// must wake up, and the packet still arrives.
#[test]
fn turning_packet_wakes_the_gated_turn_router() {
    let cfg = gated_config();
    // (1,0) -> (3,2): XY turns at node 3 (x=3,y=0).
    let records = vec![TraceRecord { cycle: 200, src: 1, dest: 19, size_flits: 4 }];
    let replay = TraceReplay::new("turn", &records, 64, 4);
    let mut net = Network::with_workload(cfg, Box::new(replay));
    let d = RouterDirective { gate: Some(true), scheme: EccScheme::None, relaxed: false };
    net.apply_directives(&[d; 64]);
    assert!(net.run_cycles(100_000));
    assert_eq!(net.stats().packets_delivered, 1);
    // At least one wake-up must have occurred (the turn router).
    let report = net.report();
    assert!(report.stats.packets_delivered == 1);
}

/// MFAC channel storage absorbs bursts that would otherwise stall: with
/// zero channel capacity the same burst takes longer to drain.
#[test]
fn channel_storage_improves_burst_drain() {
    let run = |capacity: usize| {
        let mut cfg = quiet();
        cfg.channel_capacity = capacity;
        let mut net = Network::new(cfg, WorkloadSpec::uniform(0.08, 40), 5);
        assert!(net.run_cycles(2_000_000));
        net.report().exec_cycles
    };
    let without = run(0);
    let with = run(8);
    assert!(with <= without, "8-stage channels ({with}) must not be slower than wires ({without})");
}

/// TECQED (the t = 3 extension scheme) corrects more per hop and therefore
/// re-transmits less than SECDED at the same high error rate.
#[test]
fn tecqed_retransmits_less_than_secded() {
    let run = |scheme| {
        let cfg = SimConfig { default_scheme: scheme, ..SimConfig::default() };
        let mut net = Network::new(cfg, WorkloadSpec::uniform(0.02, 20), 31);
        net.set_error_rate_override(Some(3e-4));
        assert!(net.run_cycles(2_000_000));
        assert_eq!(net.stats().packets_delivered, 64 * 20);
        net.stats().clone()
    };
    let secded = run(EccScheme::Secded);
    let tecqed = run(EccScheme::Tecqed);
    assert!(secded.hop_retx_events > 0);
    assert!(
        tecqed.hop_retx_events < secded.hop_retx_events,
        "TECQED {} vs SECDED {}",
        tecqed.hop_retx_events,
        secded.hop_retx_events
    );
    assert_eq!(tecqed.corrupted_packets, 0);
}

/// Per-hop re-transmission preserves data integrity: even at a brutal
/// forced error rate, SECDED+NACK delivers every packet uncorrupted.
#[test]
fn retransmission_machinery_is_lossless() {
    let cfg = SimConfig { default_scheme: EccScheme::Dected, ..SimConfig::default() };
    let mut net = Network::new(cfg, WorkloadSpec::uniform(0.02, 20), 6);
    net.set_error_rate_override(Some(3e-4));
    assert!(net.run_cycles(2_000_000));
    let s = net.stats();
    assert_eq!(s.packets_delivered, 64 * 20);
    assert!(s.faulty_traversals > 500, "forced rate must bite: {}", s.faulty_traversals);
    assert_eq!(s.corrupted_packets, 0);
}

/// Wormhole ordering: packets between the same pair arrive in order under a
/// deterministic single-flow workload (per-packet order is a simulator
/// invariant the skip-scan must preserve).
#[test]
fn single_flow_packets_arrive_in_injection_order() {
    let cfg = quiet();
    let records: Vec<TraceRecord> =
        (0..50).map(|i| TraceRecord { cycle: 10 * i, src: 0, dest: 63, size_flits: 4 }).collect();
    let replay = TraceReplay::new("flow", &records, 64, 50);
    let mut net = Network::with_workload(cfg, Box::new(replay));
    assert!(net.run_cycles(1_000_000));
    assert_eq!(net.stats().packets_delivered, 50);
    // Strictly increasing delivery is implied by max latency being bounded:
    // with in-order VCs a later packet cannot finish a full window earlier.
    assert!(net.stats().latency_max < 10_000);
}

/// Directives are sticky until replaced: an applied ECC scheme shows up in
/// the ECC activity counters through the power report.
#[test]
fn directives_change_ecc_activity() {
    let run = |scheme| {
        let mut cfg = quiet();
        cfg.default_scheme = scheme;
        let mut net = Network::new(cfg, WorkloadSpec::uniform(0.02, 15), 7);
        assert!(net.run_cycles(1_000_000));
        net.report().power.dynamic_mw
    };
    let crc_only = run(EccScheme::None);
    let dected = run(EccScheme::Dected);
    assert!(
        dected > crc_only * 1.05,
        "DECTED encode/decode energy must show up: {dected} vs {crc_only}"
    );
}

/// The gating state machine reaches all three states under reactive gating.
#[test]
fn gate_wake_cycle_reaches_all_states() {
    let mut cfg = gated_config();
    cfg.reactive_gating = true;
    cfg.idle_gate_threshold = 4;
    cfg.wake_occupancy = 1;
    // Bursty on/off traffic to force gate + wake churn.
    let spec = WorkloadSpec { pattern: SpatialPattern::Uniform, ..WorkloadSpec::uniform(0.01, 30) };
    let mut net = Network::new(cfg, spec, 8);
    let mut saw_waking = false;
    for _ in 0..20_000 {
        net.step_cycle();
        // GateState is visible through the debug surface only; infer waking
        // from stats deltas instead: wake-ups consume energy events.
        if net.is_done() {
            break;
        }
    }
    let _ = GateState::Waking(0); // states are part of the public API
    saw_waking |= net.stats().gated_router_cycles > 0;
    assert!(saw_waking, "reactive gating never engaged");
    assert!(net.run_cycles(2_000_000));
    assert_eq!(net.stats().packets_delivered, 64 * 30);
}

/// Latency percentiles are consistent with the recorded min/avg/max.
#[test]
fn latency_percentiles_are_ordered() {
    let cfg = quiet();
    let mut net = Network::new(cfg, WorkloadSpec::uniform(0.04, 40), 9);
    assert!(net.run_cycles(2_000_000));
    let s = net.stats();
    let p50 = s.latency_percentile(0.5);
    let p95 = s.latency_percentile(0.95);
    let p99 = s.latency_percentile(0.99);
    assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
    assert!(p99 <= s.latency_max as f64 * 1.2);
    assert!(s.avg_latency() >= p50 * 0.3 && s.avg_latency() <= p99 * 1.2);
    assert_eq!(s.latency_hist.count(), s.packets_delivered);
}
