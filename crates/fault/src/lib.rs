//! # noc-fault
//!
//! Fault substrate for the IntelliNoC reproduction (Wang et al., ISCA 2019):
//!
//! * [`ThermalModel`]/[`ThermalGrid`] — lumped-RC per-tile thermal model
//!   (HotSpot substitute, paper §6.1),
//! * [`VariusModel`] — temperature/voltage/aging-dependent transient
//!   bit-error rate (VARIUS substitute, Eq. 3),
//! * [`AgingModel`]/[`AgingState`] — NBTI + HCI ΔVth accumulation with the
//!   alpha-power-law delay feedback (Eqs. 4–7),
//! * [`FaultInjector`] — per-traversal bit-flip sampling feeding the real
//!   codecs in `noc-ecc`,
//! * [`extrapolate_mttf`]/[`network_mttf`] — FIT/MTTF extrapolation
//!   (Fig. 16).
//!
//! # Examples
//!
//! ```
//! use noc_fault::{ThermalGrid, ThermalModel, VariusModel, FaultInjector};
//!
//! let thermal = ThermalModel::default();
//! let mut grid = ThermalGrid::new(thermal, 8, 8);
//! grid.step(&vec![45.0; 64], 1_000);
//!
//! let varius = VariusModel::default();
//! let re = varius.bit_error_rate(grid.temp_c(0), 1.0, 0.0);
//! let mut injector = FaultInjector::new(1);
//! let flips = injector.sample_flip_count(145, re);
//! assert!(flips <= 145);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aging;
mod hard;
mod injector;
mod mttf;
mod thermal;
mod varius;

pub use aging::{AgingModel, AgingState};
pub use hard::{HardFault, HardFaultKind, HardFaultScenario, HardFaultTarget};
pub use injector::FaultInjector;
pub use mttf::{extrapolate_mttf, network_mttf, MttfEstimate, CYCLES_PER_HOUR};
pub use thermal::{ThermalGrid, ThermalModel};
pub use varius::VariusModel;
