//! VARIUS-style transient timing-error model.
//!
//! Following the paper's §6.1, the per-bit probability of a timing error on a
//! link traversal, `Re`, increases with operating temperature and decreases
//! with supply voltage. The per-flit fault probability follows the paper's
//! Eq. 3: `P_fault = 1 − (1 − Re)ⁿ` for an n-bit codeword.
//!
//! Aging couples in through delay degradation: a router whose transistors
//! have shifted threshold voltage has less timing slack, which multiplies
//! `Re` (alpha-power law, §6.2).

use serde::{Deserialize, Serialize};

/// Timing-error model parameters.
///
/// Passive constants bag; fields are public by design.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VariusModel {
    /// Base per-bit error rate at the reference temperature and voltage.
    pub base_rate: f64,
    /// Reference temperature in °C.
    pub ref_temp_c: f64,
    /// Exponential temperature coefficient (1/°C).
    pub temp_coeff: f64,
    /// Reference supply voltage in volts.
    pub ref_vdd: f64,
    /// Exponential voltage coefficient (1/V); higher Vdd → more slack →
    /// fewer errors.
    pub vdd_coeff: f64,
    /// Multiplier applied per unit of relative delay degradation from aging.
    pub aging_coeff: f64,
    /// Lower clamp on the produced rate.
    pub min_rate: f64,
    /// Upper clamp on the produced rate.
    pub max_rate: f64,
}

impl Default for VariusModel {
    fn default() -> Self {
        VariusModel {
            base_rate: 1e-7,
            ref_temp_c: 60.0,
            temp_coeff: 0.28,
            ref_vdd: 1.0,
            vdd_coeff: 12.0,
            aging_coeff: 40.0,
            min_rate: 1e-12,
            max_rate: 5e-4,
        }
    }
}

impl VariusModel {
    /// Per-bit timing-error probability for one link traversal.
    ///
    /// `delay_degradation` is the relative circuit-delay increase from aging
    /// (0.0 for a fresh chip; see [`crate::AgingState::delay_degradation`]).
    pub fn bit_error_rate(&self, temp_c: f64, vdd: f64, delay_degradation: f64) -> f64 {
        let t = (self.temp_coeff * (temp_c - self.ref_temp_c)).exp();
        let v = (-self.vdd_coeff * (vdd - self.ref_vdd)).exp();
        let a = (self.aging_coeff * delay_degradation).exp();
        (self.base_rate * t * v * a).clamp(self.min_rate, self.max_rate)
    }

    /// Per-bit rate under relaxed-timing transmission (operation mode 4):
    /// doubling the link traversal time means a bit only fails if both
    /// half-rate samples fail, squaring the (already small) probability —
    /// "reduced to near zero" in the paper's terms.
    pub fn relaxed_bit_error_rate(&self, temp_c: f64, vdd: f64, delay_degradation: f64) -> f64 {
        let re = self.bit_error_rate(temp_c, vdd, delay_degradation);
        (re * re).max(self.min_rate)
    }

    /// Paper Eq. 3: probability that an `n_bits` flit suffers ≥1 bit error.
    pub fn flit_fault_probability(&self, re: f64, n_bits: usize) -> f64 {
        1.0 - (1.0 - re).powi(n_bits as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_increases_with_temperature() {
        let m = VariusModel::default();
        let cold = m.bit_error_rate(50.0, 1.0, 0.0);
        let hot = m.bit_error_rate(90.0, 1.0, 0.0);
        assert!(hot > cold * 5.0, "hot {hot} cold {cold}");
    }

    #[test]
    fn rate_decreases_with_voltage() {
        let m = VariusModel::default();
        let low = m.bit_error_rate(60.0, 0.9, 0.0);
        let high = m.bit_error_rate(60.0, 1.1, 0.0);
        assert!(low > high * 5.0);
    }

    #[test]
    fn aging_raises_rate() {
        let m = VariusModel::default();
        let fresh = m.bit_error_rate(60.0, 1.0, 0.0);
        let aged = m.bit_error_rate(60.0, 1.0, 0.05);
        assert!(aged > fresh * 2.0);
    }

    #[test]
    fn rates_are_clamped() {
        let m = VariusModel::default();
        assert!(m.bit_error_rate(-200.0, 2.0, 0.0) >= m.min_rate);
        assert!(m.bit_error_rate(500.0, 0.0, 1.0) <= m.max_rate);
    }

    #[test]
    fn relaxed_rate_is_near_zero() {
        let m = VariusModel::default();
        let re = m.bit_error_rate(85.0, 1.0, 0.0);
        let relaxed = m.relaxed_bit_error_rate(85.0, 1.0, 0.0);
        assert!(relaxed <= re * re * 1.0001 + m.min_rate);
        assert!(relaxed < re / 100.0);
    }

    #[test]
    fn eq3_flit_probability() {
        let m = VariusModel::default();
        // For small Re, P ≈ n·Re.
        let re = 1e-8;
        let p = m.flit_fault_probability(re, 145);
        assert!((p - 145.0 * re).abs() / (145.0 * re) < 1e-4);
        // Degenerate cases.
        assert_eq!(m.flit_fault_probability(0.0, 145), 0.0);
        assert!((m.flit_fault_probability(1.0, 10) - 1.0).abs() < 1e-12);
    }
}
