//! Lumped-RC thermal model (HotSpot substitute).
//!
//! The paper feeds per-router utilization/power into HotSpot to obtain
//! run-time operating temperatures, which then drive both the VARIUS
//! transient-error model and the NBTI/HCI aging model. This reproduction
//! uses a first-order lumped-RC network: each tile has a thermal capacitance
//! and a resistance to ambient, plus lateral coupling to its mesh neighbors.
//!
//! The thermal time constant is *accelerated* relative to silicon reality
//! (milliseconds) so that the power→temperature→error feedback loop is
//! exercised within the shorter simulated windows used here; the
//! steady-state temperatures are unaffected by this choice.

use serde::{Deserialize, Serialize};

/// Thermal model parameters.
///
/// Passive constants bag; fields are public by design.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalModel {
    /// Die-ambient temperature floor in °C (includes core/cache activity
    /// that is not modeled by the NoC simulator).
    pub ambient_c: f64,
    /// Thermal resistance of one tile in °C per mW of router power.
    pub r_th_c_per_mw: f64,
    /// Thermal time constant in cycles (accelerated; see module docs).
    pub tau_cycles: f64,
    /// Lateral coupling coefficient toward the neighbor average per `tau`.
    pub coupling: f64,
    /// Hard upper clamp in °C (package limit).
    pub max_temp_c: f64,
}

impl Default for ThermalModel {
    fn default() -> Self {
        ThermalModel {
            ambient_c: 55.0,
            r_th_c_per_mw: 1.2,
            tau_cycles: 2_500.0,
            coupling: 0.15,
            max_temp_c: 110.0,
        }
    }
}

impl ThermalModel {
    /// Steady-state temperature of an isolated tile dissipating `power_mw`.
    pub fn steady_state_c(&self, power_mw: f64) -> f64 {
        (self.ambient_c + self.r_th_c_per_mw * power_mw).min(self.max_temp_c)
    }
}

/// Per-tile temperature state for a `width × height` mesh.
///
/// # Examples
///
/// ```
/// use noc_fault::{ThermalGrid, ThermalModel};
///
/// let model = ThermalModel::default();
/// let mut grid = ThermalGrid::new(model, 8, 8);
/// let powers = vec![40.0; 64];
/// for _ in 0..100 {
///     grid.step(&powers, 1_000);
/// }
/// assert!(grid.temp_c(0) > model.ambient_c);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThermalGrid {
    model: ThermalModel,
    width: usize,
    height: usize,
    temps: Vec<f64>,
}

impl ThermalGrid {
    /// Creates a grid with all tiles at ambient temperature.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is zero.
    pub fn new(model: ThermalModel, width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "grid dimensions must be nonzero");
        ThermalGrid { model, width, height, temps: vec![model.ambient_c; width * height] }
    }

    /// Number of tiles.
    pub fn len(&self) -> usize {
        self.temps.len()
    }

    /// Returns `true` if the grid has no tiles (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.temps.is_empty()
    }

    /// Current temperature of tile `i` in °C.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn temp_c(&self, i: usize) -> f64 {
        self.temps[i]
    }

    /// All tile temperatures.
    pub fn temps(&self) -> &[f64] {
        &self.temps
    }

    /// Mean temperature across the die.
    pub fn mean_c(&self) -> f64 {
        self.temps.iter().sum::<f64>() / self.temps.len() as f64
    }

    /// Hottest tile temperature.
    pub fn max_c(&self) -> f64 {
        self.temps.iter().cloned().fold(f64::MIN, f64::max)
    }

    /// Advances the grid by `dt_cycles` given per-tile router power (mW).
    ///
    /// # Panics
    ///
    /// Panics if `powers_mw.len()` differs from the number of tiles.
    pub fn step(&mut self, powers_mw: &[f64], dt_cycles: u64) {
        assert_eq!(powers_mw.len(), self.temps.len(), "power vector size mismatch");
        let m = &self.model;
        // Integration factor, clamped for stability when dt >> tau.
        let alpha = (dt_cycles as f64 / m.tau_cycles).min(1.0);
        let old = self.temps.clone();
        for y in 0..self.height {
            for x in 0..self.width {
                let i = y * self.width + x;
                let target = m.ambient_c + m.r_th_c_per_mw * powers_mw[i];
                // Neighbor average for lateral spreading.
                let mut nsum = 0.0;
                let mut ncnt = 0.0;
                let mut visit = |xx: isize, yy: isize| {
                    if xx >= 0
                        && yy >= 0
                        && (xx as usize) < self.width
                        && (yy as usize) < self.height
                    {
                        nsum += old[yy as usize * self.width + xx as usize];
                        ncnt += 1.0;
                    }
                };
                visit(x as isize - 1, y as isize);
                visit(x as isize + 1, y as isize);
                visit(x as isize, y as isize - 1);
                visit(x as isize, y as isize + 1);
                let navg = if ncnt > 0.0 { nsum / ncnt } else { old[i] };
                let local = target + m.coupling * (navg - old[i]) / alpha.max(1e-9) * alpha;
                let t = old[i] + alpha * (local - old[i]);
                self.temps[i] = t.clamp(m.ambient_c, m.max_temp_c);
            }
        }
    }

    /// Model parameters.
    pub fn model(&self) -> &ThermalModel {
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn settle(grid: &mut ThermalGrid, powers: &[f64]) {
        for _ in 0..500 {
            grid.step(powers, 1_000);
        }
    }

    #[test]
    fn converges_to_steady_state_uniform() {
        let m = ThermalModel::default();
        let mut g = ThermalGrid::new(m, 4, 4);
        let powers = vec![30.0; 16];
        settle(&mut g, &powers);
        let expect = m.steady_state_c(30.0);
        for &t in g.temps() {
            assert!((t - expect).abs() < 1.0, "temp {t} vs {expect}");
        }
    }

    #[test]
    fn hotter_power_hotter_tile() {
        let m = ThermalModel::default();
        let mut g = ThermalGrid::new(m, 4, 4);
        let mut powers = vec![10.0; 16];
        powers[5] = 60.0;
        settle(&mut g, &powers);
        assert!(g.temp_c(5) > g.temp_c(15) + 5.0);
    }

    #[test]
    fn lateral_coupling_warms_neighbors() {
        let m = ThermalModel { coupling: 0.4, ..ThermalModel::default() };
        let mut g = ThermalGrid::new(m, 5, 1);
        let mut powers = vec![0.0; 5];
        powers[2] = 80.0;
        settle(&mut g, &powers);
        // Neighbors of the hot tile are warmer than the far corners.
        assert!(g.temp_c(1) > g.temp_c(0));
        assert!(g.temp_c(3) > g.temp_c(4) - 1e-9);
        assert!(g.temp_c(1) > m.ambient_c + 0.5);
    }

    #[test]
    fn clamped_to_package_limit() {
        let m = ThermalModel::default();
        let mut g = ThermalGrid::new(m, 1, 1);
        settle(&mut g, &[100_000.0]);
        assert!(g.temp_c(0) <= m.max_temp_c);
    }

    #[test]
    fn cooling_when_power_removed() {
        let m = ThermalModel::default();
        let mut g = ThermalGrid::new(m, 2, 2);
        settle(&mut g, &[50.0; 4]);
        let hot = g.mean_c();
        settle(&mut g, &[0.0; 4]);
        assert!(g.mean_c() < hot - 10.0);
        assert!((g.mean_c() - m.ambient_c).abs() < 1.0);
    }

    #[test]
    fn large_dt_is_stable() {
        let m = ThermalModel::default();
        let mut g = ThermalGrid::new(m, 3, 3);
        for _ in 0..10 {
            g.step(&[45.0; 9], 1_000_000); // dt >> tau
        }
        for &t in g.temps() {
            assert!(t.is_finite());
            assert!(t >= m.ambient_c && t <= m.max_temp_c);
        }
    }
}
