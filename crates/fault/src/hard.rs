//! Permanent and intermittent hard faults.
//!
//! Transient bit flips (handled by [`crate::FaultInjector`]) corrupt data in
//! flight; *hard* faults take whole links or routers out of service. A
//! [`HardFaultScenario`] is a deterministic, seeded schedule of such
//! failures: fail-stop faults that never recover, intermittent faults that
//! flap with a fixed duty cycle, and MTTF-driven wear-out samples drawn from
//! an exponential lifetime distribution. The simulator replays the schedule
//! cycle-by-cycle and reroutes or drops traffic accordingly.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// What a hard fault takes down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HardFaultTarget {
    /// One mesh link, identified by the router it leaves and the outgoing
    /// direction index (0 = X+, 1 = X−, 2 = Y+, 3 = Y−). Link failures are
    /// symmetric: the reverse channel dies with it.
    Link {
        /// Router the link leaves.
        router: u32,
        /// Outgoing direction index (0 = X+, 1 = X−, 2 = Y+, 3 = Y−).
        dir: u8,
    },
    /// A whole router, including its local NI attachment.
    Router {
        /// The failed router.
        router: u32,
    },
}

/// Temporal behaviour of a hard fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HardFaultKind {
    /// Permanent fail-stop: down from the activation cycle onward.
    FailStop,
    /// Intermittent flapping: from activation on, the target is down for the
    /// first `down` cycles of every `period`-cycle window.
    Intermittent {
        /// Flapping period in cycles (must be nonzero).
        period: u64,
        /// Down time at the start of each period, in cycles.
        down: u64,
    },
}

/// One scheduled hard fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HardFault {
    /// Cycle the fault activates.
    pub at: u64,
    /// What fails.
    pub target: HardFaultTarget,
    /// How it fails.
    pub kind: HardFaultKind,
}

impl HardFault {
    /// Whether the target is down at `cycle`.
    pub fn is_down(&self, cycle: u64) -> bool {
        if cycle < self.at {
            return false;
        }
        match self.kind {
            HardFaultKind::FailStop => true,
            HardFaultKind::Intermittent { period, down } => {
                period > 0 && (cycle - self.at) % period < down
            }
        }
    }

    /// Whether this fault can ever transition back up (intermittent faults
    /// do; fail-stop faults do not).
    pub fn is_intermittent(&self) -> bool {
        matches!(self.kind, HardFaultKind::Intermittent { .. })
    }
}

/// A deterministic schedule of hard faults for one simulation run.
///
/// # Examples
///
/// ```
/// use noc_fault::HardFaultScenario;
///
/// let s = HardFaultScenario::dead_links(8, 8, 2, 42, 0);
/// assert_eq!(s.faults.len(), 2);
/// // Same seed → identical schedule.
/// assert_eq!(s, HardFaultScenario::dead_links(8, 8, 2, 42, 0));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HardFaultScenario {
    /// Scheduled faults, in schedule order.
    pub faults: Vec<HardFault>,
}

impl HardFaultScenario {
    /// An empty scenario (no hard faults).
    pub fn none() -> Self {
        HardFaultScenario::default()
    }

    /// Whether the scenario schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// `n` distinct fail-stop link failures on a `width`×`height` mesh,
    /// chosen by `seed`, all activating at cycle `at`.
    pub fn dead_links(width: usize, height: usize, n: usize, seed: u64, at: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x6c69_6e6b);
        let links = all_links(width, height);
        let chosen = choose_distinct(&mut rng, links.len(), n.min(links.len()));
        let faults = chosen
            .into_iter()
            .map(|i| HardFault {
                at,
                target: HardFaultTarget::Link { router: links[i].0, dir: links[i].1 },
                kind: HardFaultKind::FailStop,
            })
            .collect();
        HardFaultScenario { faults }
    }

    /// `n` distinct fail-stop router failures, chosen by `seed`, activating
    /// at cycle `at`.
    pub fn dead_routers(width: usize, height: usize, n: usize, seed: u64, at: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x726f_7574);
        let nodes = width * height;
        let chosen = choose_distinct(&mut rng, nodes, n.min(nodes));
        let faults = chosen
            .into_iter()
            .map(|r| HardFault {
                at,
                target: HardFaultTarget::Router { router: r as u32 },
                kind: HardFaultKind::FailStop,
            })
            .collect();
        HardFaultScenario { faults }
    }

    /// `n` distinct intermittently flapping links (down `down` of every
    /// `period` cycles), chosen by `seed`, activating at cycle `at`.
    pub fn flapping_links(
        width: usize,
        height: usize,
        n: usize,
        seed: u64,
        at: u64,
        period: u64,
        down: u64,
    ) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x666c_6170);
        let links = all_links(width, height);
        let chosen = choose_distinct(&mut rng, links.len(), n.min(links.len()));
        let faults = chosen
            .into_iter()
            .map(|i| HardFault {
                at,
                target: HardFaultTarget::Link { router: links[i].0, dir: links[i].1 },
                kind: HardFaultKind::Intermittent { period, down: down.min(period) },
            })
            .collect();
        HardFaultScenario { faults }
    }

    /// Wear-out sampling: each link draws an exponential lifetime with mean
    /// `mean_cycles`; links whose sampled lifetime falls inside `horizon`
    /// fail-stop at that cycle. Models MTTF-driven end-of-life failures.
    pub fn wearout(width: usize, height: usize, seed: u64, mean_cycles: f64, horizon: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x7765_6172);
        let mut faults = Vec::new();
        for (router, dir) in all_links(width, height) {
            // Inverse-CDF exponential sample; clamp u away from 0.
            let u: f64 = rng.gen_range(1e-12..1.0);
            let life = -u.ln() * mean_cycles;
            if life < horizon as f64 {
                faults.push(HardFault {
                    at: life as u64,
                    target: HardFaultTarget::Link { router, dir },
                    kind: HardFaultKind::FailStop,
                });
            }
        }
        faults.sort_by_key(|f| f.at);
        HardFaultScenario { faults }
    }

    /// Merges another scenario's faults into this one.
    pub fn merged(mut self, other: HardFaultScenario) -> Self {
        self.faults.extend(other.faults);
        self
    }

    /// Earliest activation cycle in the schedule, if any.
    pub fn first_activation(&self) -> Option<u64> {
        self.faults.iter().map(|f| f.at).min()
    }
}

/// Every directed mesh link in canonical order: for each router, its X+ then
/// Y+ neighbour (each physical link listed once, in its canonical
/// direction).
fn all_links(width: usize, height: usize) -> Vec<(u32, u8)> {
    let mut links = Vec::new();
    for y in 0..height {
        for x in 0..width {
            let r = (y * width + x) as u32;
            if x + 1 < width {
                links.push((r, 0)); // X+
            }
            if y + 1 < height {
                links.push((r, 2)); // Y+
            }
        }
    }
    links
}

/// `n` distinct indices in `0..len`, in draw order (deterministic for a
/// given RNG state).
fn choose_distinct(rng: &mut SmallRng, len: usize, n: usize) -> Vec<usize> {
    let mut chosen = Vec::with_capacity(n);
    while chosen.len() < n && chosen.len() < len {
        let i = rng.gen_range(0..len);
        if !chosen.contains(&i) {
            chosen.push(i);
        }
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fail_stop_is_down_forever() {
        let f = HardFault {
            at: 100,
            target: HardFaultTarget::Link { router: 0, dir: 0 },
            kind: HardFaultKind::FailStop,
        };
        assert!(!f.is_down(99));
        assert!(f.is_down(100));
        assert!(f.is_down(1_000_000));
        assert!(!f.is_intermittent());
    }

    #[test]
    fn intermittent_flaps_with_duty_cycle() {
        let f = HardFault {
            at: 10,
            target: HardFaultTarget::Router { router: 3 },
            kind: HardFaultKind::Intermittent { period: 100, down: 30 },
        };
        assert!(!f.is_down(9));
        assert!(f.is_down(10));
        assert!(f.is_down(39));
        assert!(!f.is_down(40));
        assert!(!f.is_down(109));
        assert!(f.is_down(110));
        assert!(f.is_intermittent());
    }

    #[test]
    fn zero_period_intermittent_never_down() {
        let f = HardFault {
            at: 0,
            target: HardFaultTarget::Link { router: 0, dir: 0 },
            kind: HardFaultKind::Intermittent { period: 0, down: 0 },
        };
        assert!(!f.is_down(50));
    }

    #[test]
    fn dead_links_deterministic_and_distinct() {
        let a = HardFaultScenario::dead_links(8, 8, 8, 7, 0);
        let b = HardFaultScenario::dead_links(8, 8, 8, 7, 0);
        assert_eq!(a, b);
        assert_eq!(a.faults.len(), 8);
        let mut targets: Vec<_> = a.faults.iter().map(|f| f.target).collect();
        targets.dedup();
        assert_eq!(targets.len(), 8, "links must be distinct");
        let c = HardFaultScenario::dead_links(8, 8, 8, 8, 0);
        assert_ne!(a, c, "different seeds should pick different links");
    }

    #[test]
    fn dead_links_clamps_to_available_links() {
        // 2x2 mesh has 4 physical links.
        let s = HardFaultScenario::dead_links(2, 2, 100, 1, 0);
        assert_eq!(s.faults.len(), 4);
    }

    #[test]
    fn dead_routers_in_range() {
        let s = HardFaultScenario::dead_routers(4, 4, 3, 5, 500);
        assert_eq!(s.faults.len(), 3);
        for f in &s.faults {
            assert_eq!(f.at, 500);
            match f.target {
                HardFaultTarget::Router { router } => assert!(router < 16),
                _ => panic!("expected router target"),
            }
        }
    }

    #[test]
    fn wearout_sorted_and_inside_horizon() {
        let s = HardFaultScenario::wearout(8, 8, 3, 50_000.0, 100_000);
        assert!(!s.faults.is_empty(), "mean ≪ horizon should produce failures");
        assert!(s.faults.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(s.faults.iter().all(|f| f.at < 100_000));
        assert_eq!(s, HardFaultScenario::wearout(8, 8, 3, 50_000.0, 100_000));
    }

    #[test]
    fn merged_concatenates() {
        let a = HardFaultScenario::dead_links(4, 4, 2, 1, 0);
        let b = HardFaultScenario::dead_routers(4, 4, 1, 1, 10);
        let m = a.clone().merged(b);
        assert_eq!(m.faults.len(), 3);
        assert_eq!(m.first_activation(), Some(0));
        assert!(HardFaultScenario::none().is_empty());
        assert_eq!(HardFaultScenario::none().first_activation(), None);
    }

    #[test]
    fn all_links_counts() {
        // w*h mesh: (w-1)*h horizontal + w*(h-1) vertical links.
        assert_eq!(all_links(8, 8).len(), 7 * 8 + 8 * 7);
        assert_eq!(all_links(2, 2).len(), 4);
    }
}
