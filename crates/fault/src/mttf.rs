//! Mean-time-to-failure estimation (Fig. 16).
//!
//! The simulated windows are far too short for ΔVth to reach the failure
//! threshold, so — like the paper's architecture-level reliability framework
//! [23, 44] — MTTF is *extrapolated*: from the average NBTI/HCI stress rates
//! observed during the run, solve for the wall-clock time at which
//! `ΔVth(t) = 10 % · Vth0`.

use crate::aging::{AgingModel, AgingState};
use serde::{Deserialize, Serialize};

/// Cycles per hour at the paper's 2.0 GHz clock.
pub const CYCLES_PER_HOUR: f64 = 2.0e9 * 3600.0;

/// MTTF estimate for one component or the whole network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MttfEstimate {
    /// Extrapolated time to failure in cycles.
    pub cycles: f64,
}

impl MttfEstimate {
    /// MTTF in hours.
    pub fn hours(&self) -> f64 {
        self.cycles / CYCLES_PER_HOUR
    }

    /// MTTF in years.
    pub fn years(&self) -> f64 {
        self.hours() / (24.0 * 365.0)
    }

    /// Failure-in-time rate: failures per 10⁹ device-hours.
    pub fn fit(&self) -> f64 {
        1e9 / self.hours()
    }
}

/// Extrapolates MTTF from the stress rates accumulated in `state`.
///
/// Solves `k_n·(r_n·t)^n1 + k_h·(r_h·t)^n2 = failure_dvth` for `t` by
/// bisection (the left side is strictly increasing in `t`).
///
/// Returns `None` when the state has accumulated no stress at all (an
/// always-gated router never ages and so never fails from wear-out).
///
/// # Examples
///
/// ```
/// use noc_fault::{extrapolate_mttf, AgingModel, AgingState};
///
/// let model = AgingModel::default();
/// let mut state = AgingState::new();
/// state.accumulate(&model, 80.0, 0.5, 1_000_000);
/// let mttf = extrapolate_mttf(&model, &state).expect("stressed router ages");
/// assert!(mttf.years() > 0.0);
/// ```
pub fn extrapolate_mttf(model: &AgingModel, state: &AgingState) -> Option<MttfEstimate> {
    let rn = state.nbti_rate();
    let rh = state.hci_rate();
    if rn <= 0.0 && rh <= 0.0 {
        return None;
    }
    let target = model.failure_dvth();
    let dvth_at = |t: f64| model.nbti_dvth(rn * t) + model.hci_dvth(rh * t);
    // Bracket the root.
    let mut lo = 0.0f64;
    let mut hi = 1e12;
    while dvth_at(hi) < target {
        hi *= 10.0;
        if hi > 1e30 {
            return None; // effectively never fails
        }
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if dvth_at(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(MttfEstimate { cycles: 0.5 * (lo + hi) })
}

/// Network-level MTTF under the serial reliability model of the paper's
/// architecture-level framework [23, 44]: component failure rates (FIT)
/// add, so `MTTF_net = 1 / Σ (1 / MTTF_i)`. Routers that never age
/// (`None`) contribute no failure rate.
///
/// Returns `None` if no router accumulated any stress.
pub fn network_mttf(model: &AgingModel, states: &[AgingState]) -> Option<MttfEstimate> {
    let rate: f64 =
        states.iter().filter_map(|s| extrapolate_mttf(model, s)).map(|m| 1.0 / m.cycles).sum();
    if rate > 0.0 {
        Some(MttfEstimate { cycles: 1.0 / rate })
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aged(temp: f64, act: f64) -> AgingState {
        let m = AgingModel::default();
        let mut s = AgingState::new();
        s.accumulate(&m, temp, act, 1_000_000);
        s
    }

    #[test]
    fn extrapolation_matches_direct_simulation() {
        let m = AgingModel::default();
        let s = aged(75.0, 0.3);
        let mttf = extrapolate_mttf(&m, &s).unwrap();
        // Directly verify: at the extrapolated time the ΔVth equals the
        // threshold (within bisection tolerance).
        let dvth =
            m.nbti_dvth(s.nbti_rate() * mttf.cycles) + m.hci_dvth(s.hci_rate() * mttf.cycles);
        assert!((dvth - m.failure_dvth()).abs() / m.failure_dvth() < 1e-6);
    }

    #[test]
    fn hotter_router_fails_sooner() {
        let m = AgingModel::default();
        let cool = extrapolate_mttf(&m, &aged(60.0, 0.3)).unwrap();
        let hot = extrapolate_mttf(&m, &aged(95.0, 0.3)).unwrap();
        assert!(hot.cycles < cool.cycles);
    }

    #[test]
    fn busier_router_fails_sooner() {
        let m = AgingModel::default();
        let idle = extrapolate_mttf(&m, &aged(70.0, 0.05)).unwrap();
        let busy = extrapolate_mttf(&m, &aged(70.0, 0.9)).unwrap();
        assert!(busy.cycles < idle.cycles);
    }

    #[test]
    fn gated_router_never_fails() {
        let m = AgingModel::default();
        let s = aged(70.0, 0.0);
        assert!(extrapolate_mttf(&m, &s).is_none());
    }

    #[test]
    fn network_mttf_sums_failure_rates() {
        let m = AgingModel::default();
        let states = [aged(60.0, 0.2), aged(90.0, 0.8), aged(70.0, 0.4)];
        let net = network_mttf(&m, &states).unwrap();
        let worst = extrapolate_mttf(&m, &states[1]).unwrap();
        // Below the weakest component (rates add), but within a factor of
        // the component count.
        assert!(net.cycles < worst.cycles);
        assert!(net.cycles > worst.cycles / 3.0);
        // Removing a component raises network MTTF.
        let fewer = network_mttf(&m, &states[..2]).unwrap();
        assert!(fewer.cycles > net.cycles);
    }

    #[test]
    fn mttf_units_are_plausible() {
        let m = AgingModel::default();
        let mttf = extrapolate_mttf(&m, &aged(75.0, 0.3)).unwrap();
        assert!(mttf.years() > 0.1 && mttf.years() < 50.0, "{} years", mttf.years());
        assert!(mttf.fit() > 0.0);
    }
}
