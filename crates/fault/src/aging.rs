//! NBTI + HCI transistor-aging model (paper §6.2).
//!
//! The paper quantifies permanent-fault susceptibility through the shift in
//! transistor threshold voltage ΔVth, accumulated from two independent
//! mechanisms:
//!
//! * **NBTI** (Eq. 5): grows with a sub-linear power of *temperature-weighted
//!   stress time* — PMOS stress whenever the router is powered.
//! * **HCI** (Eq. 6): grows with a sub-linear power of *switching-activity
//!   time* — NMOS stress proportional to dynamic activity.
//!
//! A transistor is considered permanently failed when ΔVth exceeds 10 % of
//! the nominal threshold voltage (paper [37]); the alpha-power law (Eq. 4)
//! converts ΔVth into a relative circuit-delay degradation that also feeds
//! back into the transient-error rate.
//!
//! Both mechanisms accumulate *rates* (so temperature/activity may vary over
//! the run) and apply the power-law exponent at read time:
//! `ΔVth_NBTI = k_n · S^n₁` with `S = Σ w(T)·dt`, and similarly for HCI.

use serde::{Deserialize, Serialize};

/// Aging model parameters.
///
/// Passive constants bag; fields are public by design. Constants are
/// calibrated so a router held at ~75 °C with moderate activity reaches the
/// ΔVth failure threshold after a few years of continuous 2 GHz operation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AgingModel {
    /// Nominal threshold voltage (V) at 32 nm.
    pub vth0: f64,
    /// NBTI prefactor `k_n` (V per stress-unit^n1).
    pub k_nbti: f64,
    /// NBTI time exponent `n₁` (classic reaction–diffusion ≈ 0.25).
    pub nbti_exponent: f64,
    /// NBTI temperature-acceleration coefficient (1/°C) in `w(T)`.
    pub nbti_temp_coeff: f64,
    /// Reference temperature (°C) where `w(T) = 1`.
    pub ref_temp_c: f64,
    /// HCI prefactor `k_h` (V per activity-unit^n2).
    pub k_hci: f64,
    /// HCI time exponent `n₂` (≈ 0.45).
    pub hci_exponent: f64,
    /// ΔVth/Vth0 fraction at which a permanent fault is declared (0.10).
    pub failure_fraction: f64,
    /// Alpha-power-law exponent relating (Vdd−Vth) to delay (Eq. 4).
    pub alpha: f64,
    /// Supply voltage (V).
    pub vdd: f64,
}

impl Default for AgingModel {
    fn default() -> Self {
        AgingModel {
            vth0: 0.30,
            k_nbti: 7.3e-7,
            nbti_exponent: 0.25,
            nbti_temp_coeff: 0.05,
            ref_temp_c: 45.0,
            k_hci: 3.5e-10,
            hci_exponent: 0.45,
            failure_fraction: 0.10,
            alpha: 1.3,
            vdd: 1.0,
        }
    }
}

impl AgingModel {
    /// NBTI temperature weight `w(T)`.
    pub fn nbti_weight(&self, temp_c: f64) -> f64 {
        (self.nbti_temp_coeff * (temp_c - self.ref_temp_c)).exp()
    }

    /// ΔVth (V) produced by accumulated NBTI stress `s` (weighted cycles).
    pub fn nbti_dvth(&self, s: f64) -> f64 {
        self.k_nbti * s.max(0.0).powf(self.nbti_exponent)
    }

    /// ΔVth (V) produced by accumulated HCI activity `h` (activity cycles).
    pub fn hci_dvth(&self, h: f64) -> f64 {
        self.k_hci * h.max(0.0).powf(self.hci_exponent)
    }

    /// Relative circuit-delay degradation for a given ΔVth via the
    /// alpha-power law: `d/d₀ = ((Vdd−Vth0)/(Vdd−Vth0−ΔVth))^α − 1`.
    pub fn delay_degradation(&self, dvth: f64) -> f64 {
        let head0 = self.vdd - self.vth0;
        let head = (head0 - dvth).max(1e-3);
        (head0 / head).powf(self.alpha) - 1.0
    }

    /// ΔVth (V) at which the device is declared permanently failed.
    pub fn failure_dvth(&self) -> f64 {
        self.failure_fraction * self.vth0
    }
}

/// Per-router accumulated aging state.
///
/// # Examples
///
/// ```
/// use noc_fault::{AgingModel, AgingState};
///
/// let model = AgingModel::default();
/// let mut state = AgingState::new();
/// // One epoch: 1000 cycles at 80 degC with 40% switching activity.
/// state.accumulate(&model, 80.0, 0.4, 1_000);
/// assert!(state.delta_vth(&model) > 0.0);
/// assert!(state.aging_factor(&model) > 1.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct AgingState {
    /// Temperature-weighted powered cycles (NBTI stress integral `S`).
    nbti_stress: f64,
    /// Activity-weighted cycles (HCI integral `H`).
    hci_stress: f64,
    /// Total wall-clock cycles observed (powered or not).
    total_cycles: f64,
}

impl AgingState {
    /// Fresh (unaged) state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates one epoch of stress.
    ///
    /// `activity` is the switching-activity factor in `[0, 1]` (0 when the
    /// router is power-gated — gating pauses both NBTI and HCI stress, which
    /// is exactly the stress-relaxing benefit of operation mode 0).
    pub fn accumulate(&mut self, model: &AgingModel, temp_c: f64, activity: f64, cycles: u64) {
        let dt = cycles as f64;
        self.total_cycles += dt;
        if activity > 0.0 {
            self.nbti_stress += model.nbti_weight(temp_c) * dt;
            self.hci_stress += activity.clamp(0.0, 1.0) * dt;
        }
    }

    /// Current total ΔVth in volts (NBTI + HCI, independent per paper [21]).
    pub fn delta_vth(&self, model: &AgingModel) -> f64 {
        model.nbti_dvth(self.nbti_stress) + model.hci_dvth(self.hci_stress)
    }

    /// Paper Eq. 7: `Aging = 1 + (ΔVth / Vth0) × 100 %`, always > 1 so it can
    /// be used inside the log-space reward.
    pub fn aging_factor(&self, model: &AgingModel) -> f64 {
        1.0 + 100.0 * self.delta_vth(model) / model.vth0
    }

    /// Relative delay degradation from the current ΔVth.
    pub fn delay_degradation(&self, model: &AgingModel) -> f64 {
        model.delay_degradation(self.delta_vth(model))
    }

    /// Whether the router has crossed the permanent-fault threshold.
    pub fn is_failed(&self, model: &AgingModel) -> bool {
        self.delta_vth(model) >= model.failure_dvth()
    }

    /// Average NBTI stress rate per cycle so far (for MTTF extrapolation).
    pub fn nbti_rate(&self) -> f64 {
        if self.total_cycles == 0.0 {
            0.0
        } else {
            self.nbti_stress / self.total_cycles
        }
    }

    /// Average HCI stress rate per cycle so far (for MTTF extrapolation).
    pub fn hci_rate(&self) -> f64 {
        if self.total_cycles == 0.0 {
            0.0
        } else {
            self.hci_stress / self.total_cycles
        }
    }

    /// Total cycles observed.
    pub fn total_cycles(&self) -> f64 {
        self.total_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const YEAR_CYCLES: f64 = 6.3e16; // ~1 year at 2 GHz

    #[test]
    fn fresh_state_is_unaged() {
        let m = AgingModel::default();
        let s = AgingState::new();
        assert_eq!(s.delta_vth(&m), 0.0);
        assert_eq!(s.aging_factor(&m), 1.0);
        assert!(!s.is_failed(&m));
    }

    #[test]
    fn hotter_ages_faster() {
        let m = AgingModel::default();
        let mut cool = AgingState::new();
        let mut hot = AgingState::new();
        cool.accumulate(&m, 55.0, 0.3, 1_000_000);
        hot.accumulate(&m, 95.0, 0.3, 1_000_000);
        assert!(hot.delta_vth(&m) > cool.delta_vth(&m) * 1.2);
    }

    #[test]
    fn gated_epochs_do_not_age() {
        let m = AgingModel::default();
        let mut s = AgingState::new();
        s.accumulate(&m, 80.0, 0.0, 1_000_000);
        assert_eq!(s.delta_vth(&m), 0.0);
        assert_eq!(s.total_cycles(), 1_000_000.0);
    }

    #[test]
    fn lifetime_scale_is_years() {
        // At a sustained 75 degC and 30% activity, failure should occur
        // between ~0.2 and ~30 years of continuous operation.
        let m = AgingModel::default();
        let mut s = AgingState::new();
        let step = YEAR_CYCLES / 100.0;
        let mut years = 0.0;
        while !s.is_failed(&m) && years < 50.0 {
            s.accumulate(&m, 75.0, 0.3, step as u64);
            years += 0.01;
        }
        assert!(years > 0.2 && years < 30.0, "lifetime {years} years");
    }

    #[test]
    fn delay_degradation_monotone_in_dvth() {
        let m = AgingModel::default();
        let mut last = -1.0;
        for i in 0..10 {
            let d = m.delay_degradation(i as f64 * 0.005);
            assert!(d > last);
            last = d;
        }
        assert!(m.delay_degradation(0.0).abs() < 1e-12);
    }

    #[test]
    fn aging_factor_always_above_one() {
        let m = AgingModel::default();
        let mut s = AgingState::new();
        s.accumulate(&m, 70.0, 0.5, 10_000);
        assert!(s.aging_factor(&m) > 1.0);
        assert!(s.aging_factor(&m).ln() > 0.0);
    }

    #[test]
    fn sublinear_time_dependence() {
        // Doubling stress time must less-than-double NBTI dVth (n1 < 1).
        let m = AgingModel::default();
        let mut a = AgingState::new();
        let mut b = AgingState::new();
        a.accumulate(&m, 75.0, 0.3, 1_000_000);
        b.accumulate(&m, 75.0, 0.3, 2_000_000);
        assert!(b.delta_vth(&m) < 2.0 * a.delta_vth(&m));
        assert!(b.delta_vth(&m) > a.delta_vth(&m));
    }
}
