//! Run-time transient-fault injection.
//!
//! The simulator asks the injector, per link traversal, how many bits of the
//! encoded codeword flip. For the overwhelmingly common zero-flip case this
//! costs one RNG draw; the rare faulty case samples exact positions so the
//! real codecs in `noc-ecc` see realistic corruption patterns.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Samples bit-flip events for link traversals.
///
/// # Examples
///
/// ```
/// use noc_fault::FaultInjector;
///
/// let mut inj = FaultInjector::new(42);
/// // At a forced 10% per-bit rate nearly every 145-bit flit is hit.
/// inj.set_rate_override(Some(0.1));
/// let flips = inj.sample_flip_count(145, 1e-9);
/// assert!(flips > 0);
/// ```
#[derive(Debug, Clone)]
pub struct FaultInjector {
    rng: SmallRng,
    rate_override: Option<f64>,
    injected_bits: u64,
    faulty_flits: u64,
}

impl FaultInjector {
    /// Creates an injector with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        FaultInjector {
            rng: SmallRng::seed_from_u64(seed),
            rate_override: None,
            injected_bits: 0,
            faulty_flits: 0,
        }
    }

    /// Forces a fixed per-bit error rate regardless of the model-provided
    /// rate (used by the Fig. 17b error-rate sweep). `None` restores normal
    /// operation.
    pub fn set_rate_override(&mut self, rate: Option<f64>) {
        self.rate_override = rate;
    }

    /// Current override, if any.
    pub fn rate_override(&self) -> Option<f64> {
        self.rate_override
    }

    /// Samples the number of bit flips for one `n_bits` codeword traversal
    /// at per-bit rate `re` (overridden if an override is set).
    pub fn sample_flip_count(&mut self, n_bits: usize, re: f64) -> u32 {
        let re = self.rate_override.unwrap_or(re).clamp(0.0, 1.0);
        if re <= 0.0 {
            return 0;
        }
        // Fast path: probability of zero flips.
        let p0 = (1.0 - re).powi(n_bits as i32);
        if self.rng.gen::<f64>() < p0 {
            return 0;
        }
        // Rare path: at least one flip. Sample the full binomial by
        // per-bit Bernoulli draws, rejecting the all-zero outcome.
        loop {
            let mut k = 0u32;
            for _ in 0..n_bits {
                if self.rng.gen::<f64>() < re {
                    k += 1;
                }
            }
            if k > 0 {
                self.injected_bits += k as u64;
                self.faulty_flits += 1;
                return k;
            }
        }
    }

    /// Chooses `k` distinct bit positions in `[0, n_bits)` to flip.
    ///
    /// # Panics
    ///
    /// Panics if `k > n_bits`.
    pub fn choose_positions(&mut self, n_bits: usize, k: u32) -> Vec<usize> {
        assert!((k as usize) <= n_bits, "cannot flip {k} of {n_bits} bits");
        let mut chosen = Vec::with_capacity(k as usize);
        while chosen.len() < k as usize {
            let p = self.rng.gen_range(0..n_bits);
            if !chosen.contains(&p) {
                chosen.push(p);
            }
        }
        chosen
    }

    /// Total bits flipped so far.
    pub fn injected_bits(&self) -> u64 {
        self.injected_bits
    }

    /// Total flits that suffered at least one flip.
    pub fn faulty_flits(&self) -> u64 {
        self.faulty_flits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_never_flips() {
        let mut inj = FaultInjector::new(1);
        for _ in 0..1000 {
            assert_eq!(inj.sample_flip_count(145, 0.0), 0);
        }
        assert_eq!(inj.injected_bits(), 0);
    }

    #[test]
    fn high_rate_flips_often() {
        let mut inj = FaultInjector::new(2);
        let mut total = 0u32;
        for _ in 0..100 {
            total += inj.sample_flip_count(145, 0.05);
        }
        // Expectation is 145*0.05*100 = 725.
        assert!(total > 400 && total < 1100, "total {total}");
    }

    #[test]
    fn flip_rate_statistics_match_re() {
        let mut inj = FaultInjector::new(3);
        let re = 1e-3;
        let n = 145;
        let trials = 20_000;
        let mut faulty = 0;
        for _ in 0..trials {
            if inj.sample_flip_count(n, re) > 0 {
                faulty += 1;
            }
        }
        let expect = (1.0 - (1.0 - re).powi(n as i32)) * trials as f64;
        let got = faulty as f64;
        assert!((got - expect).abs() < expect * 0.25, "got {got} expect {expect}");
    }

    #[test]
    fn positions_are_distinct_and_in_range() {
        let mut inj = FaultInjector::new(4);
        for k in 1..=5u32 {
            let pos = inj.choose_positions(145, k);
            assert_eq!(pos.len(), k as usize);
            let mut sorted = pos.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), k as usize);
            assert!(pos.iter().all(|&p| p < 145));
        }
    }

    #[test]
    fn override_beats_model_rate() {
        let mut inj = FaultInjector::new(5);
        inj.set_rate_override(Some(0.5));
        let mut any = 0;
        for _ in 0..50 {
            if inj.sample_flip_count(145, 0.0) > 0 {
                any += 1;
            }
        }
        assert_eq!(any, 50);
        inj.set_rate_override(None);
        assert_eq!(inj.sample_flip_count(145, 0.0), 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = FaultInjector::new(7);
        let mut b = FaultInjector::new(7);
        for _ in 0..100 {
            assert_eq!(a.sample_flip_count(145, 0.01), b.sample_flip_count(145, 0.01));
        }
    }
}
