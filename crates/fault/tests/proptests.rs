//! Property tests for the fault substrate.

use noc_fault::{
    extrapolate_mttf, network_mttf, AgingModel, AgingState, FaultInjector, ThermalGrid,
    ThermalModel, VariusModel,
};
use proptest::prelude::*;

proptest! {
    /// Thermal state stays within [ambient, max] for any power history.
    #[test]
    fn thermal_bounded_for_any_power_history(
        powers in prop::collection::vec(prop::collection::vec(0f64..500.0, 16), 1..40),
        dt in 1u64..50_000,
    ) {
        let m = ThermalModel::default();
        let mut g = ThermalGrid::new(m, 4, 4);
        for p in &powers {
            g.step(p, dt);
            for &t in g.temps() {
                prop_assert!(t >= m.ambient_c - 1e-9 && t <= m.max_temp_c + 1e-9);
                prop_assert!(t.is_finite());
            }
        }
    }

    /// The error-rate model is monotone in temperature and bounded by its
    /// clamps, for any aging level.
    #[test]
    fn varius_monotone_and_clamped(
        t in -50f64..300.0,
        dt in 0.1f64..50.0,
        vdd in 0.7f64..1.3,
        aging in 0f64..0.5,
    ) {
        let m = VariusModel::default();
        let lo = m.bit_error_rate(t, vdd, aging);
        let hi = m.bit_error_rate(t + dt, vdd, aging);
        prop_assert!(hi >= lo);
        prop_assert!(lo >= m.min_rate && hi <= m.max_rate);
        // Relaxed timing never increases the rate.
        prop_assert!(m.relaxed_bit_error_rate(t, vdd, aging) <= lo.max(m.min_rate * 2.0));
    }

    /// Injected flip counts never exceed the codeword width and occur at
    /// a frequency consistent with Eq. 3 (loose statistical bound).
    #[test]
    fn injector_flip_counts_in_range(seed in 0u64..500, re in 1e-6f64..1e-2) {
        let mut inj = FaultInjector::new(seed);
        let n = 145usize;
        let mut faulty = 0u32;
        let trials = 2_000;
        for _ in 0..trials {
            let k = inj.sample_flip_count(n, re);
            prop_assert!(k as usize <= n);
            if k > 0 {
                faulty += 1;
            }
        }
        let p = 1.0 - (1.0 - re).powi(n as i32);
        let expect = p * trials as f64;
        // 6-sigma binomial bound.
        let sigma = (trials as f64 * p * (1.0 - p)).sqrt();
        prop_assert!(
            (faulty as f64 - expect).abs() < 6.0 * sigma + 5.0,
            "faulty {faulty} expect {expect}"
        );
    }

    /// MTTF extrapolation is antitone in stress: more stress, shorter life.
    #[test]
    fn mttf_antitone_in_stress(
        temp in 50f64..100.0,
        act in 0.05f64..1.0,
        extra in 1.0f64..30.0,
    ) {
        let m = AgingModel::default();
        let mut a = AgingState::new();
        let mut b = AgingState::new();
        a.accumulate(&m, temp, act, 1_000_000);
        b.accumulate(&m, temp + extra, act, 1_000_000);
        let ma = extrapolate_mttf(&m, &a).expect("stressed");
        let mb = extrapolate_mttf(&m, &b).expect("stressed");
        prop_assert!(mb.cycles <= ma.cycles);
    }

    /// Network MTTF is never longer than the best component and never
    /// shorter than best/N.
    #[test]
    fn network_mttf_bounds(
        temps in prop::collection::vec(55f64..105.0, 2..32),
    ) {
        let m = AgingModel::default();
        let states: Vec<AgingState> = temps
            .iter()
            .map(|&t| {
                let mut s = AgingState::new();
                s.accumulate(&m, t, 0.3, 1_000_000);
                s
            })
            .collect();
        let per: Vec<f64> = states
            .iter()
            .map(|s| extrapolate_mttf(&m, s).expect("stressed").cycles)
            .collect();
        let best = per.iter().cloned().fold(f64::MIN, f64::max);
        let worst = per.iter().cloned().fold(f64::MAX, f64::min);
        let net = network_mttf(&m, &states).expect("stressed").cycles;
        prop_assert!(net <= worst + 1.0, "net {net} > worst {worst}");
        // 1/sum(1/m_i) >= worst/N (harmonic-mean style lower bound).
        prop_assert!(net >= worst / states.len() as f64 * 0.99, "net {net} best {best}");
    }
}
