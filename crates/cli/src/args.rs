//! Minimal dependency-free argument parsing for the `intellinoc` binary.

use std::collections::HashMap;

/// Parsed command line: a subcommand, `--key value` options, and `--flag`
/// switches.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first non-flag token).
    pub command: Option<String>,
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses an argument list (excluding the program name).
    ///
    /// Tokens starting with `--` are options when followed by a non-`--`
    /// token, flags otherwise.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Args {
        let tokens: Vec<String> = args.into_iter().collect();
        let mut out = Args::default();
        let mut i = 0;
        while i < tokens.len() {
            let t = &tokens[i];
            if let Some(name) = t.strip_prefix("--") {
                if i + 1 < tokens.len() && !tokens[i + 1].starts_with("--") {
                    out.options.insert(name.to_owned(), tokens[i + 1].clone());
                    i += 2;
                } else {
                    out.flags.push(name.to_owned());
                    i += 1;
                }
            } else {
                if out.command.is_none() {
                    out.command = Some(t.clone());
                } else {
                    out.positional.push(t.clone());
                }
                i += 1;
            }
        }
        out
    }

    /// Parses from the real process arguments.
    pub fn from_env() -> Args {
        Self::parse(std::env::args().skip(1))
    }

    /// String option value.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// Typed option value with a default.
    ///
    /// # Errors
    ///
    /// Returns an error string naming the option when parsing fails.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.options.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("invalid value for --{name}: {v}")),
        }
    }

    /// Whether a bare `--flag` was passed.
    pub fn has_flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(str::to_owned))
    }

    #[test]
    fn command_options_flags() {
        let a = parse("run --design intellinoc --ppn 100 --json");
        assert_eq!(a.command.as_deref(), Some("run"));
        assert_eq!(a.get("design"), Some("intellinoc"));
        assert_eq!(a.get_or("ppn", 0u64).unwrap(), 100);
        assert!(a.has_flag("json"));
        assert!(!a.has_flag("quiet"));
    }

    #[test]
    fn positional_arguments() {
        let a = parse("trace capture out.jsonl");
        assert_eq!(a.command.as_deref(), Some("trace"));
        assert_eq!(a.positional, ["capture", "out.jsonl"]);
    }

    #[test]
    fn defaults_and_errors() {
        let a = parse("run --seed twelve");
        assert_eq!(a.get_or("ppn", 42u64).unwrap(), 42);
        assert!(a.get_or("seed", 0u64).is_err());
    }

    #[test]
    fn empty_input() {
        let a = parse("");
        assert!(a.command.is_none());
        assert!(a.positional.is_empty());
    }
}
