//! `intellinoc` — command-line front end for the IntelliNoC reproduction.
//!
//! ```text
//! intellinoc run      --design intellinoc --benchmark canneal [--ppn 150]
//! intellinoc inspect  --benchmark canneal [--report-out report.md] [--heatmap-dir DIR]
//! intellinoc compare  --benchmark canneal [--ppn 150] [--pretrain-episodes 12]
//! intellinoc sweep    --design secded --rates 0.01,0.02,0.04 [--ppn 100] [--jobs 4]
//! intellinoc trace capture <out.jsonl> --benchmark dedup [--ppn 50]
//! intellinoc trace replay <in.jsonl> --design cp
//! intellinoc campaign --dead-links 0,1,2,4,8 [--no-reroute] [--csv-out camp.csv]
//!                     [--jobs 4] [--journal camp.jsonl [--resume]]
//!                     [--deadline-cycles N] [--max-retries N]
//! intellinoc bench record  [--grid designs|ci] [--seeds N] [--out BENCH_x.json]
//! intellinoc bench compare --baseline BENCH_x.json [--force-regress]
//! intellinoc profile  [--grid designs|ci] [--top N] [--prof-out F.txt]
//!                     [--flame-out F.folded] [--profile-out F.txt]
//! intellinoc serve    --state-dir DIR [--addr H:P] [--port-file F] [--resume]
//!                     [--jobs N] [--tenant-quota N] [--chunk-units N]
//!                     [--alert-rules "noc_serve_queue_depth>=8:for=3"]
//! intellinoc serve    --chaos 25 [--chaos-seed S] [--state-dir DIR]
//! intellinoc postmortem <bundle.jsonl> [--out report.md]
//! intellinoc journeys <journeys.jsonl> [--out report.md] [--csv-out contrib.csv]
//!                     [--perfetto-out trace.json] [--top N]
//! intellinoc area
//! intellinoc list
//! ```
//!
//! Grid commands (`campaign`, `sweep`) run on the `noc-runner` execution
//! engine. Exit codes: 0 clean, 1 usage/config error, 2 partial results.

use intellinoc_cli::args::Args;
use intellinoc_cli::commands::{self, CmdOutcome};

fn main() {
    let args = Args::from_env();
    let code = match args.command.as_deref() {
        Some("run") => commands::run(&args),
        Some("inspect") => commands::inspect(&args),
        Some("compare") => commands::compare(&args),
        Some("sweep") => commands::sweep(&args),
        Some("trace") => commands::trace(&args),
        Some("campaign") => commands::campaign(&args),
        Some("bench") => commands::bench(&args),
        Some("profile") => commands::profile(&args),
        Some("serve") => commands::serve(&args),
        Some("postmortem") => commands::postmortem(&args),
        Some("journeys") => commands::journeys(&args),
        Some("area") => commands::area(),
        Some("list") => commands::list(),
        Some(other) => {
            eprintln!("unknown command: {other}\n");
            usage();
            Err("bad usage".into())
        }
        None => {
            usage();
            Ok(CmdOutcome::Done)
        }
    };
    // Exit codes: 0 clean, 1 usage/config error, 2 partial results (some
    // experiment units failed, timed out, or were skipped — the printed
    // report is still valid for the units that completed).
    match code {
        Ok(CmdOutcome::Done) => {}
        Ok(CmdOutcome::Partial) => std::process::exit(2),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

fn usage() {
    eprintln!("IntelliNoC reproduction CLI (ISCA'19, Wang et al.)");
    eprintln!();
    eprintln!("USAGE: intellinoc <command> [options]");
    eprintln!();
    eprintln!("COMMANDS:");
    eprintln!("  run      simulate one design on one workload");
    eprintln!("           --design <secded|eb|cp|cpd|intellinoc>");
    eprintln!("           --benchmark <name> | --rate <packets/node/cycle>");
    eprintln!("           [--ppn N] [--seed S] [--error-rate R] [--time-step T] [--json]");
    eprintln!("           [--trace] [--trace-out F.jsonl|F.csv] [--trace-filter router=N,kind=K]");
    eprintln!("           [--trace-capacity N] [--timeline-out F.json|F.csv] [--profile]");
    eprintln!("           [--metrics-out F.prom|-] [--metrics-every N] [--metrics-addr H:P]");
    eprintln!("           [--alert-rules \"metric>value[:for=N][:critical];...\"]");
    eprintln!("           [--blackbox-dir DIR [--blackbox-capacity N] (flight recorder:");
    eprintln!("            stall / critical-alert post-mortem bundles)]");
    eprintln!("           [+ closed-loop options]");
    eprintln!("  inspect  run with full attribution and render a trace-analysis report");
    eprintln!("           --benchmark <name> | --rate R  [--design <d>] [--ppn N] [--seed S]");
    eprintln!("           [--report-out F.md] [--heatmap-dir DIR] [--decisions-out F.jsonl]");
    eprintln!("           [--convergence-out F.csv] [+ run's telemetry flags]");
    eprintln!("  compare  all five designs on one workload, normalized table");
    eprintln!("           --benchmark <name> [--ppn N] [--pretrain-episodes E]");
    eprintln!("  sweep    latency-vs-load curve for one design");
    eprintln!("           --design <d> --rates r1,r2,... [--ppn N] [+ runner options]");
    eprintln!("  trace    capture <out> --benchmark <name> | replay <in> --design <d>");
    eprintln!("  campaign deterministic hard-fault resilience campaign, all designs");
    eprintln!("           [--rate R] [--ppn N] [--seed S] [--dead-links 0,1,2,4,8]");
    eprintln!("           [--router-fail CYCLE | --no-router-fail] [--flapping N]");
    eprintln!("           [--no-reroute] [--max-cycles N] [--json] [--csv-out F.csv]");
    eprintln!("           [--assert-delivery T] [+ runner options] [+ closed-loop options]");
    eprintln!("           closed-loop cells are audited: conservation violations exit 1");
    eprintln!("  bench    multi-seed baseline recording and regression gating");
    eprintln!("           record  [--grid designs|ci] [--designs d1,d2] [--rates r1,r2]");
    eprintln!("                   [--seeds N] [--ppn N] [--seed S] [--name X] [--out F.json]");
    eprintln!("           compare --baseline BENCH_X.json [--fresh-out F.json] [--json]");
    eprintln!("                   [--gate-throughput] [--force-regress (chaos: prove the gate)]");
    eprintln!("           both accept runner options; compare exits 2 on regression");
    eprintln!("  profile  run a bench grid with span profiling, merge span trees fleet-wide");
    eprintln!("           [--grid designs|ci] [--designs d1,d2] [--rates r1,r2] [--seeds N]");
    eprintln!("           [--top N] [--prof-out F.txt (deterministic cycle-domain table)]");
    eprintln!("           [--flame-out F.folded (inferno/speedscope collapsed stacks)]");
    eprintln!("           [--profile-out F.txt (full wall-clock profile table)]");
    eprintln!("  serve    crash-survivable multi-tenant experiment daemon (DESIGN.md \u{a7}14)");
    eprintln!("           --state-dir DIR (WAL + journals + reports; --resume to recover)");
    eprintln!("           [--addr H:P (default 127.0.0.1:9900)] [--port-file F]");
    eprintln!("           [--jobs N] [--tenant-quota N (429 + Retry-After beyond it)]");
    eprintln!("           [--chunk-units N (cancel/pause granularity)]");
    eprintln!("           [--drain-deadline-ms N] [--chaos-kill point:k (test abort)]");
    eprintln!("           [--alert-rules SPEC (firing rules in /api/jobs + noc_alert_*)]");
    eprintln!("           --chaos N  harness: N randomized kill -9 points against real");
    eprintln!("                      daemons, asserting byte-identical lossless recovery");
    eprintln!("                      [--chaos-seed S] [--chaos-jobs J]");
    eprintln!("  postmortem  render a flight-recorder bundle as deterministic markdown");
    eprintln!("           <bundle.jsonl> [--out report.md]");
    eprintln!("  journeys analyze a recorded journey log: tail-latency critical path,");
    eprintln!("           per-(router, cause) contributions, Perfetto export");
    eprintln!("           <journeys.jsonl> [--out report.md] [--csv-out contrib.csv]");
    eprintln!("           [--perfetto-out trace.json] [--top N]");
    eprintln!("  area     Table 2 per-router area comparison");
    eprintln!("  list     known designs and benchmarks");
    eprintln!();
    eprintln!("JOURNEY TRACING (per-packet hop spans; DESIGN.md \u{a7}18):");
    eprintln!("  run/inspect: --journeys-every N (trace 1-in-N packets; any sink implies 1)");
    eprintln!("               --journeys-out F.jsonl  --perfetto-out F.json");
    eprintln!("               --journey-report-out F.md (default: stdout)");
    eprintln!("               --journey-csv-out F.csv  --journeys-top K (slowest-K, default 5)");
    eprintln!("  campaign/sweep/bench record: --journeys-dir DIR [--journeys-every N]");
    eprintln!("               one journeys-<key>.jsonl per unit; analyze with `journeys`");
    eprintln!("  serve: jobs submitted with \"journeys_every\": N expose their logs at");
    eprintln!("               GET /api/jobs/<id>/journeys");
    eprintln!();
    eprintln!("CLOSED-LOOP OPTIONS (run, sweep, campaign, bench — request-reply protocol):");
    eprintln!("  --workload reqreply   destinations reply; sources gate on completions and");
    eprintln!("                        the conservation auditor arms (critical alert rule)");
    eprintln!("  --reply-timeout N     cycles before a client retries its request (2000)");
    eprintln!("  --max-req-retries N   retry budget per transaction before failed (3)");
    eprintln!("  --req-backoff-base N / --req-backoff-cap N   capped-exponential retry");
    eprintln!("                        backoff in cycles (32 / 1024)");
    eprintln!("  --shed-threshold F    recent-timeout-rate above which sources shed load (0.5)");
    eprintln!("  --service-latency N   server think time before the reply (8)");
    eprintln!("  --reply-packets N     reply size in packets (1)");
    eprintln!("  --chaos-orphan ID     chaos: silently lose txn ID to prove the auditor fires");
    eprintln!();
    eprintln!("RUNNER OPTIONS (campaign, sweep, bench, profile — the noc-runner engine):");
    eprintln!("  --jobs N              worker threads (default 1; results identical at any N)");
    eprintln!("  --deadline-cycles N   per-unit simulated-cycle deadline (timed-out status)");
    eprintln!("  --max-retries N       retry retryable failures up to N times");
    eprintln!("  --retry-backoff-ms M  retry backoff base (default 25)");
    eprintln!("  --retry-backoff P     linear (default) | exp: capped exponential with");
    eprintln!("                        deterministic per-key jitter [--retry-backoff-cap-ms C]");
    eprintln!("  --journal F.jsonl     journal terminal unit records (enables --resume)");
    eprintln!("  --resume              reuse journaled records, run only the rest");
    eprintln!("  --max-units N         dispatch at most N units, skip the tail");
    eprintln!("  --runner-log F.jsonl  write runner lifecycle events (+ profile health note)");
    eprintln!("  --blackbox-dir DIR    flight recorder: dying units (stall/timeout/panic/");
    eprintln!("                        retry-exhausted) dump post-mortem bundles here");
    eprintln!("                        [--blackbox-capacity N ring slots, default 64]");
    eprintln!("  --force-panic M / --force-timeout M   chaos-test units whose key contains M");
    eprintln!("  --progress            live per-unit progress lines with p50/p95/ETA");
    eprintln!("  --metrics-addr H:P    serve noc_runner_* fleet gauges as Prometheus text");
    eprintln!("  --profile             per-run wall-clock + span profile to stdout");
    eprintln!("  --profile-out F.txt / --prof-out F.txt / --flame-out F.folded");
    eprintln!("                        profile artifacts (see `profile` command)");
    eprintln!();
    eprintln!("EXIT CODES: 0 clean, 1 usage/config error, 2 partial results");
}
