//! Subcommand implementations for the `intellinoc` CLI.

use crate::args::Args;
use intellinoc::{
    classify_timeout, compare as compare_outcomes, compare_bench, intellinoc_rl_config,
    pretrain_intellinoc, record_bench_instrumented, render_inspect_report,
    run_campaign_runner_instrumented, run_chaos_harness, run_experiment,
    run_experiment_instrumented, run_experiment_profiled, run_load_sweep_instrumented, run_units,
    BackoffPolicy, BenchBaseline, BenchSpec, BlackboxConfig, CampaignConfig, ChaosHarnessConfig,
    ChaosKill, ChaosOptions, Daemon, Design, ExperimentConfig, ExperimentOutcome, FleetObserver,
    FleetProgress, GateOptions, MetricsOptions, RewardKind, RunnerConfig, RunnerReport,
    ServeConfig, TelemetryArtifacts, TelemetryOptions, UnitCtx, UnitVerdict,
};
use noc_power::AreaModel;
use noc_sim::{
    bundle_file_name, parse_bundle, parse_rules, render_exposition, render_report,
    runner_events_jsonl, shared_recorder, AlertEdge, BundleCause, BundleHead, EventKind,
    JourneyLog, MetricsHub, MetricsRegistry, MetricsServer, Network, Profiler, RunnerEvent,
    SharedRecorder, TraceFilter, DEFAULT_BLACKBOX_CAPACITY,
};
use noc_traffic::{
    capture_trace, read_trace, write_trace, ParsecBenchmark, ReqReplySpec, TraceReplay,
    WorkloadSpec,
};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// Terminal disposition of a subcommand, mapped to a process exit code by
/// `main`: `Done` → 0, `Partial` → 2 (and `Err` → 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmdOutcome {
    /// Every unit of work completed cleanly.
    Done,
    /// The command produced a usable but partial report: some experiment
    /// units failed, timed out, or were skipped.
    Partial,
}

/// Result type of every subcommand.
pub type CmdResult = Result<CmdOutcome, String>;

/// Parses a design name as accepted on the command line.
///
/// # Errors
///
/// Returns a message naming the unknown design.
pub fn parse_design(s: &str) -> Result<Design, String> {
    Design::parse(s)
}

/// Parses a benchmark by full name or figure label.
///
/// # Errors
///
/// Returns a message naming the unknown benchmark.
pub fn parse_benchmark(s: &str) -> Result<ParsecBenchmark, String> {
    ParsecBenchmark::TEST_SET
        .into_iter()
        .chain([ParsecBenchmark::Blackscholes])
        .find(|b| b.name() == s || b.label() == s)
        .ok_or_else(|| format!("unknown benchmark: {s} (try `intellinoc list`)"))
}

/// Parses the closed-loop request–reply protocol knobs. Returns `Some`
/// when `--workload reqreply` is selected; each knob defaults to the
/// [`ReqReplySpec`] default when its flag is absent.
fn reqreply_from(args: &Args) -> Result<Option<ReqReplySpec>, String> {
    match args.get("workload") {
        None | Some("uniform") => Ok(None),
        Some("reqreply") => {
            let d = ReqReplySpec::default();
            Ok(Some(ReqReplySpec {
                service_latency: args.get_or("service-latency", d.service_latency)?,
                reply_packets: args.get_or("reply-packets", d.reply_packets)?,
                reply_timeout: args.get_or("reply-timeout", d.reply_timeout)?,
                max_retries: args.get_or("max-req-retries", d.max_retries)?,
                backoff_base: args.get_or("req-backoff-base", d.backoff_base)?,
                backoff_cap: args.get_or("req-backoff-cap", d.backoff_cap)?,
                shed_threshold: args.get_or("shed-threshold", d.shed_threshold)?,
                chaos_orphan: match args.get("chaos-orphan") {
                    Some(v) => Some(v.parse().map_err(|_| format!("invalid --chaos-orphan: {v}"))?),
                    None => None,
                },
            }))
        }
        Some(other) => Err(format!("unknown --workload: {other} (try uniform|reqreply)")),
    }
}

fn workload_from(args: &Args, ppn: u64) -> Result<WorkloadSpec, String> {
    let reqreply = reqreply_from(args)?;
    if let Some(b) = args.get("benchmark") {
        if reqreply.is_some() {
            return Err("--workload reqreply drives --rate traffic, not --benchmark".into());
        }
        Ok(parse_benchmark(b)?.workload(ppn))
    } else if let Some(r) = args.get("rate") {
        let rate: f64 = r.parse().map_err(|_| format!("invalid --rate: {r}"))?;
        Ok(match reqreply {
            Some(rr) => WorkloadSpec::reqreply(rate, ppn, rr),
            None => WorkloadSpec::uniform(rate, ppn),
        })
    } else {
        Err("need --benchmark <name> or --rate <packets/node/cycle>".into())
    }
}

/// Builds the execution-engine configuration and chaos switches shared by
/// the grid commands (`campaign`, `sweep`) from the command line.
///
/// # Errors
///
/// Returns a message naming the malformed option, or `--resume` without a
/// `--journal` path.
pub fn runner_config_from(args: &Args) -> Result<(RunnerConfig, ChaosOptions), String> {
    let backoff = match args.get("retry-backoff").unwrap_or("linear") {
        "linear" => BackoffPolicy::Linear,
        "exp" | "exponential" => {
            BackoffPolicy::Exponential { cap_ms: args.get_or("retry-backoff-cap-ms", 10_000u64)? }
        }
        other => return Err(format!("invalid --retry-backoff: {other} (try linear|exp)")),
    };
    let cfg = RunnerConfig {
        jobs: args.get_or("jobs", 1usize)?,
        max_retries: args.get_or("max-retries", 0u32)?,
        retry_backoff_ms: args.get_or("retry-backoff-ms", 25u64)?,
        backoff,
        deadline_cycles: match args.get("deadline-cycles") {
            Some(v) => Some(v.parse().map_err(|_| format!("invalid --deadline-cycles: {v}"))?),
            None => None,
        },
        journal: args.get("journal").map(PathBuf::from),
        resume: args.has_flag("resume"),
        max_units: match args.get("max-units") {
            Some(v) => Some(v.parse().map_err(|_| format!("invalid --max-units: {v}"))?),
            None => None,
        },
        observer: None,
        blackbox: match args.get("blackbox-dir") {
            Some(dir) => Some(BlackboxConfig {
                dir: PathBuf::from(dir),
                capacity: args.get_or("blackbox-capacity", DEFAULT_BLACKBOX_CAPACITY)?,
            }),
            None => None,
        },
    };
    if cfg.resume && cfg.journal.is_none() {
        return Err("--resume requires --journal <path>".into());
    }
    let chaos = ChaosOptions {
        panic_units: args.get("force-panic").map(str::to_owned),
        timeout_units: args.get("force-timeout").map(str::to_owned),
    };
    Ok((cfg, chaos))
}

/// Journey-tracing sampling period from the command line: `--journeys-every
/// N` explicitly, else 1 (trace every packet) when any journey artifact
/// sink is requested, else 0 (off).
fn journeys_every_from(args: &Args) -> Result<u64, String> {
    let every = args.get_or("journeys-every", 0u64)?;
    if every > 0 {
        return Ok(every);
    }
    let implied = ["journeys-out", "perfetto-out", "journey-report-out", "journey-csv-out"]
        .iter()
        .any(|k| args.get(k).is_some());
    Ok(u64::from(implied))
}

/// The journey sink for grid commands: `--journeys-dir DIR` turns per-unit
/// journey tracing on (sampling 1-in-`--journeys-every` packets, default
/// every packet) and collects one `journeys-<key>.jsonl` per unit in DIR.
fn journeys_dir_from(args: &Args) -> Result<Option<(PathBuf, u64)>, String> {
    let Some(dir) = args.get("journeys-dir") else { return Ok(None) };
    let every = args.get_or("journeys-every", 1u64)?;
    if every == 0 {
        return Err("--journeys-every 0 disables tracing; drop --journeys-dir instead".into());
    }
    std::fs::create_dir_all(dir).map_err(|e| format!("creating {dir}: {e}"))?;
    Ok(Some((PathBuf::from(dir), every)))
}

/// Whether the command line asks for span profiling, and the fleet-wide
/// sink the grid's units merge their span trees into when it does.
fn prof_sink_from(args: &Args) -> Option<Mutex<Profiler>> {
    let wanted = args.has_flag("profile")
        || args.get("profile-out").is_some()
        || args.get("prof-out").is_some()
        || args.get("flame-out").is_some();
    wanted.then(|| Mutex::new(Profiler::new()))
}

/// Drains a fleet profiler sink and writes the span-tree artifacts: the
/// deterministic cycle-domain table (`--prof-out`) and the collapsed-stack
/// flamegraph (`--flame-out`, inferno/speedscope-loadable).
fn emit_fleet_profile(
    args: &Args,
    label: &str,
    sink: Option<Mutex<Profiler>>,
) -> Result<Option<Profiler>, String> {
    let Some(sink) = sink else { return Ok(None) };
    let prof = sink.into_inner().expect("profiler sink lock");
    let tree = prof.span_tree();
    if let Some(path) = args.get("prof-out") {
        std::fs::write(path, tree.tree_table()).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("{label}: cycle-domain span table ({} spans) written to {path}", tree.len());
    }
    if let Some(path) = args.get("flame-out") {
        std::fs::write(path, tree.flamegraph()).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("{label}: collapsed-stack flamegraph ({} stacks) written to {path}", tree.len());
    }
    Ok(Some(prof))
}

/// Declares the `noc_runner_*` fleet-progress gauge families.
fn declare_fleet_metrics(reg: &mut MetricsRegistry) -> Result<(), String> {
    reg.declare_gauge("noc_runner_units_done", "Units finished so far in this grid invocation.")?;
    reg.declare_gauge("noc_runner_units_total", "Units dispatched in this grid invocation.")?;
    reg.declare_gauge("noc_runner_unit_wall_ms", "Unit wall-clock percentile so far (ms).")?;
    reg.declare_gauge("noc_runner_eta_seconds", "Estimated seconds until the grid completes.")?;
    reg.declare_counter("noc_runner_worker_units_total", "Units completed, per worker.")?;
    reg.declare_gauge(
        "noc_runner_worker_last_unit_wall_ms",
        "Wall-clock of the last unit each worker completed (ms).",
    )?;
    Ok(())
}

/// Builds the fleet observer from `--progress` (live progress/ETA lines on
/// stderr) and `--metrics-addr` (per-worker `noc_runner_*` gauges served as
/// Prometheus exposition), installing it into `rcfg`. Returns the metrics
/// server handle, which must stay alive for the duration of the grid.
fn attach_fleet_observer(
    args: &Args,
    label: &'static str,
    rcfg: &mut RunnerConfig,
) -> Result<Option<MetricsServer>, String> {
    let progress = args.has_flag("progress");
    let mut hub = None;
    let mut server = None;
    if let Some(addr) = args.get("metrics-addr") {
        let h = Arc::new(MetricsHub::new());
        let s = MetricsServer::bind(addr, Arc::clone(&h))
            .map_err(|e| format!("binding metrics endpoint {addr}: {e}"))?;
        eprintln!("{label}: serving fleet progress on http://{}/metrics", s.local_addr());
        hub = Some(h);
        server = Some(s);
    }
    if !progress && hub.is_none() {
        return Ok(None);
    }
    let mut reg = MetricsRegistry::new();
    declare_fleet_metrics(&mut reg)?;
    let reg = Mutex::new(reg);
    let observer: FleetObserver =
        Arc::new(move |p: &FleetProgress| {
            if progress {
                eprintln!(
                "{label}: {}/{} done ({}) key={} wall={:.0}ms p50={:.0}ms p95={:.0}ms eta={:.1}s",
                p.done, p.total, p.status.label(), p.key, p.wall_ms, p.p50_ms, p.p95_ms, p.eta_s
            );
            }
            if let Some(hub) = &hub {
                let mut reg = reg.lock().expect("fleet metrics registry lock");
                let worker = p.worker.to_string();
                let wl = [("worker", worker.as_str())];
                let set = |reg: &mut MetricsRegistry| -> Result<(), String> {
                    reg.gauge_set("noc_runner_units_done", &[], p.done as f64)?;
                    reg.gauge_set("noc_runner_units_total", &[], p.total as f64)?;
                    reg.gauge_set("noc_runner_unit_wall_ms", &[("quantile", "0.5")], p.p50_ms)?;
                    reg.gauge_set("noc_runner_unit_wall_ms", &[("quantile", "0.95")], p.p95_ms)?;
                    reg.gauge_set("noc_runner_eta_seconds", &[], p.eta_s)?;
                    reg.counter_add("noc_runner_worker_units_total", &wl, 1.0)?;
                    reg.gauge_set("noc_runner_worker_last_unit_wall_ms", &wl, p.wall_ms)?;
                    Ok(())
                };
                set(&mut reg).expect("fleet gauge names are static and valid");
                hub.publish(render_exposition(&reg));
            }
        });
    rcfg.observer = Some(observer);
    Ok(server)
}

/// Emits the runner-level artifacts shared by the grid commands: the
/// lifecycle-event JSONL (`--runner-log`, with a trailing profile health
/// note when profiling ran), the wall-clock profile table (`--profile` to
/// stdout, `--profile-out` to a file), and the status summary line.
fn emit_runner<T>(
    args: &Args,
    label: &str,
    report: &RunnerReport<T>,
    prof: Option<&Profiler>,
) -> Result<(), String> {
    if let Some(path) = args.get("runner-log") {
        let mut events = report.events.clone();
        if let Some(p) = prof {
            events.push(RunnerEvent::ProfileNote {
                key: label.to_owned(),
                trace_drops: p.trace_drops().unwrap_or(0),
                span_truncations: p.span_tree().truncated_enters(),
                unbalanced_exits: p.span_tree().unbalanced_exits(),
                recorder_drops: report.recorder_drops,
            });
        }
        std::fs::write(path, runner_events_jsonl(&events))
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("{label}: {} runner events written to {path}", events.len());
    }
    if args.has_flag("profile") || args.get("profile-out").is_some() {
        let mut wall = Profiler::new();
        report.fill_profiler(&mut wall);
        if let Some(p) = prof {
            wall.merge(p);
        }
        match args.get("profile-out") {
            Some(path) => {
                std::fs::write(path, wall.table()).map_err(|e| format!("writing {path}: {e}"))?;
                eprintln!("{label}: profile table written to {path}");
            }
            None => print!("{}", wall.table()),
        }
    }
    eprintln!("{label}: {}", report.summary());
    Ok(())
}

fn print_outcome(o: &ExperimentOutcome, json: bool) -> Result<(), String> {
    if json {
        let s = serde_json::to_string_pretty(o).map_err(|e| e.to_string())?;
        println!("{s}");
        return Ok(());
    }
    let r = &o.report;
    println!("design            : {}", o.design.label());
    println!("workload          : {}", o.workload);
    println!("execution time    : {} cycles", r.exec_cycles);
    println!(
        "packets           : {} delivered / {} injected",
        r.stats.packets_delivered, r.stats.packets_injected
    );
    println!(
        "latency           : avg {:.1}  p50 {:.0}  p99 {:.0}  max {} cycles",
        r.avg_latency(),
        r.stats.latency_percentile(0.50),
        r.stats.latency_percentile(0.99),
        r.stats.latency_max
    );
    println!(
        "power             : {:.1} mW static + {:.1} mW dynamic",
        r.power.static_mw, r.power.dynamic_mw
    );
    println!("energy-efficiency : {:.4} 1/uJ (Eq. 8)", r.energy_efficiency() * 1e6);
    println!(
        "reliability       : {} retx flits, {} corrected bits, {} corrupted pkts",
        r.stats.retransmitted_flits, r.stats.corrected_bits, r.stats.corrupted_packets
    );
    if let Some(t) = &r.txn {
        println!(
            "transactions      : {} issued = {} completed + {} failed + {} shed + {} in-flight",
            t.issued, t.completed, t.failed, t.shed, t.in_flight
        );
        println!(
            "txn protocol      : {} timeouts, {} retries, {} conservation violations",
            t.timeouts, t.retries, t.violations
        );
        if !t.orphans.is_empty() {
            println!("ORPHANED TXNS     : {:?}", t.orphans);
        }
    }
    println!("thermals          : mean {:.1} C, max {:.1} C", r.mean_temp_c, r.max_temp_c);
    match r.mttf_hours {
        Some(h) => println!("MTTF              : {h:.3e} hours"),
        None => println!("MTTF              : n/a (no aging accumulated)"),
    }
    if o.design.uses_rl() {
        let fr = o.mode_fractions();
        println!(
            "operation modes   : relax {:.2} crc {:.2} secded {:.2} dected {:.2} relaxed-tx {:.2}",
            fr[0], fr[1], fr[2], fr[3], fr[4]
        );
        println!("Q-table entries   : {:.1} per router (cap 350)", o.mean_qtable_entries);
    }
    Ok(())
}

/// Builds the run's telemetry switches from the command line.
///
/// Tracing turns on with `--trace`, `--trace-out`, or `--trace-filter`;
/// the timeline with `--timeline-out`; profiling with `--profile`.
pub fn telemetry_from(args: &Args) -> Result<TelemetryOptions, String> {
    let trace_filter = match args.get("trace-filter") {
        Some(spec) => TraceFilter::parse(spec)?,
        None => TraceFilter::default(),
    };
    Ok(TelemetryOptions {
        trace: args.has_flag("trace")
            || args.get("trace-out").is_some()
            || args.get("trace-filter").is_some(),
        trace_filter,
        trace_capacity: args.get_or("trace-capacity", 0usize)?,
        timeline: args.get("timeline-out").is_some(),
        profile: args.has_flag("profile")
            || args.get("profile-out").is_some()
            || args.get("prof-out").is_some()
            || args.get("flame-out").is_some(),
        attribution: args.has_flag("attribution"),
        decisions: args.has_flag("decisions"),
        journeys_every: journeys_every_from(args)?,
        metrics: MetricsOptions {
            hub: None,
            file: args.get("metrics-out").map(str::to_owned),
            every_steps: args.get_or("metrics-every", 1u64)?,
        },
        blackbox: None,
        alert_rules: match args.get("alert-rules") {
            Some(spec) => parse_rules(spec)?,
            None => Vec::new(),
        },
    })
}

/// Writes one flight-recorder bundle into `dir`, returning its path.
fn dump_cli_bundle(
    dir: &std::path::Path,
    recorder: &SharedRecorder,
    cause: BundleCause,
    key: &str,
    seed: u64,
    detail: &str,
    extras: &[(&str, String)],
) -> Result<PathBuf, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    let text = {
        let r = recorder.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let head = BundleHead {
            cause,
            key: key.to_owned(),
            seed,
            cycle: r.last_cycle(),
            detail: detail.to_owned(),
        };
        r.bundle(&head, extras)
    };
    let path = dir.join(bundle_file_name(key));
    std::fs::write(&path, &text).map_err(|e| format!("writing {}: {e}", path.display()))?;
    Ok(path)
}

/// Writes the collected telemetry artifacts to the configured sinks.
fn emit_telemetry(args: &Args, artifacts: &TelemetryArtifacts) -> Result<(), String> {
    // Structured alert transitions, one JSONL object per firing/resolved
    // edge (stderr, like the runner's lifecycle events).
    for event in &artifacts.alerts {
        eprintln!("{}", event.to_json());
    }
    if let Some(tracer) = &artifacts.tracer {
        let body = match args.get("trace-out") {
            Some(path) if path.ends_with(".csv") => Some((path, tracer.to_csv())),
            Some(path) => Some((path, tracer.to_jsonl())),
            None => None,
        };
        if let Some((path, body)) = body {
            std::fs::write(path, body).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!(
                "trace: {} events written to {path} ({} recorded, {} evicted)",
                tracer.len(),
                tracer.recorded(),
                tracer.evicted()
            );
        } else {
            eprintln!(
                "trace: {} events retained ({} recorded, {} evicted); by kind:",
                tracer.len(),
                tracer.recorded(),
                tracer.evicted()
            );
            for kind in EventKind::ALL {
                let n = tracer.count_of(kind);
                if n > 0 {
                    eprintln!("  {:<16} {n}", kind.name());
                }
            }
        }
    }
    if let (Some(path), Some(timeline)) = (args.get("timeline-out"), &artifacts.timeline) {
        let body = if path.ends_with(".csv") {
            timeline.to_csv()
        } else {
            serde_json::to_string_pretty(timeline).map_err(|e| e.to_string())?
        };
        std::fs::write(path, body).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("timeline: {} samples written to {path}", timeline.len());
    }
    if let Some(profiler) = &artifacts.profiler {
        match args.get("profile-out") {
            Some(path) => {
                std::fs::write(path, profiler.table())
                    .map_err(|e| format!("writing {path}: {e}"))?;
                eprintln!("profile: table written to {path}");
            }
            None => print!("{}", profiler.table()),
        }
        let tree = profiler.span_tree();
        if let Some(path) = args.get("prof-out") {
            std::fs::write(path, tree.tree_table()).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("profile: cycle-domain span table ({} spans) written to {path}", tree.len());
        }
        if let Some(path) = args.get("flame-out") {
            std::fs::write(path, tree.flamegraph()).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("profile: flamegraph ({} stacks) written to {path}", tree.len());
        }
    }
    if let Some(log) = &artifacts.journeys {
        eprintln!(
            "journeys: {} packet journeys, {} transactions traced (1 in {})",
            log.packets.len(),
            log.txns.len(),
            log.every
        );
        if let Some(path) = args.get("journeys-out") {
            std::fs::write(path, log.to_jsonl()).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("journeys: journey log written to {path}");
        }
        if let Some(path) = args.get("perfetto-out") {
            std::fs::write(path, log.perfetto_json())
                .map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("journeys: Perfetto trace written to {path}");
        }
        if let Some(path) = args.get("journey-csv-out") {
            std::fs::write(path, log.tail_contribution_csv())
                .map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("journeys: tail-contribution CSV written to {path}");
        }
        let k = args.get_or("journeys-top", 5usize)?;
        match args.get("journey-report-out") {
            Some(path) => {
                std::fs::write(path, log.tail_report(k))
                    .map_err(|e| format!("writing {path}: {e}"))?;
                eprintln!("journeys: tail report written to {path}");
            }
            None => print!("{}", log.tail_report(k)),
        }
    }
    Ok(())
}

/// `intellinoc run`.
pub fn run(args: &Args) -> CmdResult {
    let design = parse_design(args.get("design").ok_or("need --design")?)?;
    let ppn = args.get_or("ppn", 150u64)?;
    let workload = workload_from(args, ppn)?;
    let mut cfg = ExperimentConfig::new(design, workload)
        .with_seed(args.get_or("seed", 1u64)?)
        .with_time_step(args.get_or("time-step", 1_000u64)?);
    if let Some(r) = args.get("error-rate") {
        cfg.error_rate_override =
            Some(r.parse().map_err(|_| format!("invalid --error-rate: {r}"))?);
    }
    cfg.telemetry = telemetry_from(args)?;
    // The flight recorder: a fixed ring of recent telemetry that becomes a
    // post-mortem bundle if the run dies (stall) or a critical alert fires.
    let bb_dir = args.get("blackbox-dir").map(PathBuf::from);
    if bb_dir.is_some() {
        cfg.telemetry.blackbox =
            Some(shared_recorder(args.get_or("blackbox-capacity", DEFAULT_BLACKBOX_CAPACITY)?));
    }
    let recorder = cfg.telemetry.blackbox.clone();
    // Live scrape endpoint: serving happens on a separate thread that only
    // reads published snapshots, so it cannot perturb the simulation.
    let mut server = None;
    if let Some(addr) = args.get("metrics-addr") {
        let hub = Arc::new(MetricsHub::new());
        let s = MetricsServer::bind(addr, Arc::clone(&hub))
            .map_err(|e| format!("binding metrics endpoint {addr}: {e}"))?;
        eprintln!("metrics: serving Prometheus exposition on http://{}/metrics", s.local_addr());
        cfg.telemetry.metrics.hub = Some(hub);
        server = Some(s);
    }
    if !cfg.telemetry.any() {
        let outcome = run_experiment(cfg);
        print_outcome(&outcome, args.has_flag("json"))?;
        return Ok(CmdOutcome::Done);
    }
    let seed = cfg.seed;
    let (outcome, _, artifacts) = run_experiment_instrumented(cfg);
    print_outcome(&outcome, args.has_flag("json"))?;
    emit_telemetry(args, &artifacts)?;
    if let (Some(dir), Some(rec)) = (bb_dir.as_deref(), recorder.as_ref()) {
        let key = format!("run/{}", design.label());
        let critical = artifacts.alerts.iter().find(|e| e.critical && e.edge == AlertEdge::Firing);
        if let Some(ev) = critical {
            let detail = format!(
                "critical alert `{}` fired at cycle {} (value {}, threshold {})",
                ev.rule, ev.cycle, ev.value, ev.threshold
            );
            // A conservation-auditor firing names the orphaned transaction
            // ids in the bundle, so the post-mortem is actionable.
            let mut extras: Vec<(&str, String)> = Vec::new();
            if let Some(t) = &outcome.report.txn {
                extras.push(("txn-summary", serde_json::to_string(t).unwrap_or_default()));
                if !t.orphans.is_empty() {
                    extras.push((
                        "orphaned-txns",
                        serde_json::to_string(&t.orphans).unwrap_or_default(),
                    ));
                }
            }
            let path = dump_cli_bundle(dir, rec, BundleCause::Alert, &key, seed, &detail, &extras)?;
            eprintln!("blackbox: critical-alert bundle written to {}", path.display());
        } else if let Some(stall) = &outcome.report.stall {
            let detail =
                format!("stall watchdog aborted the run at cycle {}", outcome.report.exec_cycles);
            let extras = [("stall-report", serde_json::to_string(stall).unwrap_or_default())];
            let path = dump_cli_bundle(dir, rec, BundleCause::Stall, &key, seed, &detail, &extras)?;
            eprintln!("blackbox: stall bundle written to {}", path.display());
        }
    }
    drop(server);
    Ok(CmdOutcome::Done)
}

/// `intellinoc inspect` — run one design with full attribution and RL
/// introspection enabled, then render the trace-analysis report and any
/// requested artifact files.
pub fn inspect(args: &Args) -> CmdResult {
    let design = match args.get("design") {
        Some(d) => parse_design(d)?,
        None => Design::IntelliNoc,
    };
    let ppn = args.get_or("ppn", 50u64)?;
    let workload = workload_from(args, ppn)?;
    let mut cfg = ExperimentConfig::new(design, workload)
        .with_seed(args.get_or("seed", 1u64)?)
        .with_time_step(args.get_or("time-step", 1_000u64)?);
    if let Some(r) = args.get("error-rate") {
        cfg.error_rate_override =
            Some(r.parse().map_err(|_| format!("invalid --error-rate: {r}"))?);
    }
    cfg.telemetry = telemetry_from(args)?;
    cfg.telemetry.attribution = true;
    cfg.telemetry.decisions = design.uses_rl();
    let (outcome, _, artifacts) = run_experiment_instrumented(cfg);

    let report = render_inspect_report(&outcome, &artifacts);
    match args.get("report-out") {
        Some(path) => {
            std::fs::write(path, &report).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("inspect: report written to {path}");
        }
        None => print!("{report}"),
    }
    if let (Some(dir), Some(att)) = (args.get("heatmap-dir"), &artifacts.attribution) {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {dir}: {e}"))?;
        for grid in &att.grids {
            let path = format!("{dir}/{}.csv", grid.name);
            std::fs::write(&path, grid.to_csv()).map_err(|e| format!("writing {path}: {e}"))?;
        }
        let links = format!("{dir}/links.csv");
        std::fs::write(&links, noc_sim::link_stats_csv(&att.links))
            .map_err(|e| format!("writing {links}: {e}"))?;
        eprintln!("inspect: {} heatmaps + links.csv written to {dir}", att.grids.len());
    }
    if let Some(log) = &artifacts.decisions {
        if let Some(path) = args.get("decisions-out") {
            std::fs::write(path, log.to_jsonl()).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("inspect: {} decision records written to {path}", log.len());
        }
        if let Some(path) = args.get("convergence-out") {
            std::fs::write(path, log.convergence_csv())
                .map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("inspect: {} convergence samples written to {path}", log.convergence.len());
        }
    }
    emit_telemetry(args, &artifacts)?;
    Ok(CmdOutcome::Done)
}

/// `intellinoc compare`.
pub fn compare(args: &Args) -> CmdResult {
    let ppn = args.get_or("ppn", 150u64)?;
    let seed = args.get_or("seed", 1u64)?;
    let episodes = args.get_or("pretrain-episodes", 12u32)?;
    let workload = workload_from(args, ppn)?;
    eprintln!("pre-training IntelliNoC ({episodes} episodes on blackscholes)...");
    let tables = pretrain_intellinoc(
        intellinoc_rl_config(),
        RewardKind::LogSpace,
        150,
        1_000,
        seed,
        episodes,
    );
    let outcomes: Vec<_> = Design::ALL
        .iter()
        .map(|&design| {
            let mut cfg = ExperimentConfig::new(design, workload.clone()).with_seed(seed);
            if design.uses_rl() {
                cfg.pretrained = Some(tables.clone());
            }
            run_experiment(cfg)
        })
        .collect();
    let row = compare_outcomes(&outcomes);
    println!(
        "{:<11} {:>9} {:>9} {:>10} {:>10} {:>10} {:>8}",
        "design", "speedup", "latency", "static_pw", "dynamic_pw", "energy_eff", "mttf"
    );
    for (design, m) in &row.designs {
        println!(
            "{:<11} {:>9.3} {:>9.3} {:>10.3} {:>10.3} {:>10.3} {:>8.3}",
            design.label(),
            m.speedup,
            m.latency,
            m.static_power,
            m.dynamic_power,
            m.energy_efficiency,
            m.mttf
        );
    }
    Ok(CmdOutcome::Done)
}

/// `intellinoc sweep` — one experiment unit per injection rate, executed by
/// the `noc-runner` engine (`--jobs`, `--journal`/`--resume`, deadlines).
pub fn sweep(args: &Args) -> CmdResult {
    let design = parse_design(args.get("design").ok_or("need --design")?)?;
    let rates: Vec<f64> = args
        .get("rates")
        .ok_or("need --rates r1,r2,...")?
        .split(',')
        .map(|r| r.trim().parse().map_err(|_| format!("invalid rate: {r}")))
        .collect::<Result<_, _>>()?;
    let ppn = args.get_or("ppn", 100u64)?;
    let reqreply = reqreply_from(args)?;
    let (mut rcfg, chaos) = runner_config_from(args)?;
    let server = attach_fleet_observer(args, "sweep", &mut rcfg)?;
    let sink = prof_sink_from(args);
    let jsink = journeys_dir_from(args)?;
    let report = run_load_sweep_instrumented(
        design,
        &rates,
        ppn,
        args.get_or("seed", 1u64)?,
        &rcfg,
        &chaos,
        reqreply.as_ref(),
        sink.as_ref(),
        jsink.as_ref().map(|(d, e)| (d.as_path(), *e)),
    )?;
    if let Some((dir, _)) = &jsink {
        eprintln!("sweep: journey logs collected in {}", dir.display());
    }
    println!(
        "{:>8} {:>10} {:>8} {:>8} {:>8} {:>10} {:>10} {:>4}",
        "rate", "exec_cyc", "avg_lat", "p99_lat", "deliv%", "power_mW", "status", "try"
    );
    for rec in &report.records {
        match &rec.payload {
            Some(p) => println!(
                "{:>8.4} {:>10} {:>8.1} {:>8.0} {:>8.1} {:>10.1} {:>10} {:>4}",
                p.rate,
                p.exec_cycles,
                p.avg_latency,
                p.p99_latency,
                100.0 * p.delivery_rate,
                p.power_mw,
                rec.status.label(),
                rec.attempts
            ),
            None => {
                // `sweep/<design>/r<rate>` → the rate column, empty metrics.
                let rate = rec.key.rsplit('/').next().and_then(|s| s.strip_prefix('r'));
                println!(
                    "{:>8} {:>10} {:>8} {:>8} {:>8} {:>10} {:>10} {:>4}",
                    rate.unwrap_or("?"),
                    "-",
                    "-",
                    "-",
                    "-",
                    "-",
                    rec.status.label(),
                    rec.attempts
                );
            }
        }
    }
    let prof = emit_fleet_profile(args, "sweep", sink)?;
    emit_runner(args, "sweep", &report, prof.as_ref())?;
    drop(server);
    Ok(if report.is_clean() { CmdOutcome::Done } else { CmdOutcome::Partial })
}

/// `intellinoc trace capture|replay`.
pub fn trace(args: &Args) -> CmdResult {
    match args.positional.first().map(String::as_str) {
        Some("capture") => {
            let path = args.positional.get(1).ok_or("need an output path")?;
            let ppn = args.get_or("ppn", 50u64)?;
            let workload = workload_from(args, ppn)?;
            let records = capture_trace(workload, 8, 8, args.get_or("seed", 1u64)?, 10_000_000);
            let f = File::create(path).map_err(|e| e.to_string())?;
            write_trace(BufWriter::new(f), &records).map_err(|e| e.to_string())?;
            println!("captured {} records to {path}", records.len());
            Ok(CmdOutcome::Done)
        }
        Some("replay") => {
            let path = args.positional.get(1).ok_or("need an input path")?;
            let design = parse_design(args.get("design").ok_or("need --design")?)?;
            let f = File::open(path).map_err(|e| e.to_string())?;
            let records = read_trace(BufReader::new(f)).map_err(|e| e.to_string())?;
            let replay = TraceReplay::new(path, &records, 64, 12);
            let mut cfg = design.sim_config();
            cfg.seed = args.get_or("seed", 1u64)?;
            let mut net = Network::with_workload(cfg, Box::new(replay));
            let done = net.run_cycles(10_000_000);
            let r = net.report();
            println!(
                "replayed {} packets on {}: exec={} cycles, avg latency {:.1}, {}",
                r.stats.packets_delivered,
                design.label(),
                r.exec_cycles,
                r.avg_latency(),
                if done { "complete" } else { "INCOMPLETE" }
            );
            Ok(CmdOutcome::Done)
        }
        _ => Err("usage: intellinoc trace <capture|replay> <path> [options]".into()),
    }
}

/// `intellinoc campaign` — the deterministic fault-resilience campaign.
pub fn campaign(args: &Args) -> CmdResult {
    let mut cfg = CampaignConfig {
        rate: args.get_or("rate", 0.02f64)?,
        ppn: args.get_or("ppn", 30u64)?,
        seed: args.get_or("seed", 1u64)?,
        fault_aware_routing: !args.has_flag("no-reroute"),
        max_cycles: args.get_or("max-cycles", 400_000u64)?,
        ..CampaignConfig::default()
    };
    if let Some(spec) = args.get("dead-links") {
        cfg.dead_links = spec
            .split(',')
            .map(|n| n.trim().parse().map_err(|_| format!("invalid --dead-links entry: {n}")))
            .collect::<Result<_, _>>()?;
    }
    cfg.router_fail_at = match args.get("router-fail") {
        Some(at) => Some(at.parse().map_err(|_| format!("invalid --router-fail: {at}"))?),
        None if args.has_flag("no-router-fail") => None,
        None => cfg.router_fail_at,
    };
    cfg.flapping = args.get_or("flapping", cfg.flapping)?;
    cfg.reqreply = reqreply_from(args)?;
    let (mut rcfg, chaos) = runner_config_from(args)?;
    let server = attach_fleet_observer(args, "campaign", &mut rcfg)?;
    let sink = prof_sink_from(args);
    let jsink = journeys_dir_from(args)?;

    let report = run_campaign_runner_instrumented(
        &cfg,
        &rcfg,
        &chaos,
        sink.as_ref(),
        jsink.as_ref().map(|(d, e)| (d.as_path(), *e)),
    )?;
    if let Some((dir, _)) = &jsink {
        eprintln!("campaign: journey logs collected in {}", dir.display());
    }
    if args.has_flag("json") {
        let s = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
        println!("{s}");
    } else {
        println!(
            "{:<11} {:<20} {:>8} {:>8} {:>7} {:>9} {:>8} {:>8} {:>8} {:>7} {:>10} {:>4}",
            "design",
            "scenario",
            "injected",
            "deliver",
            "drop",
            "deliv%",
            "avg_lat",
            "p99_lat",
            "reroute",
            "stalled",
            "status",
            "try"
        );
        for rec in &report.runner.records {
            match &rec.payload {
                Some(r) => println!(
                    "{:<11} {:<20} {:>8} {:>8} {:>7} {:>9.3} {:>8.1} {:>8.0} {:>8} {:>7} {:>10} {:>4}",
                    r.design,
                    r.scenario,
                    r.injected,
                    r.delivered,
                    r.dropped,
                    100.0 * r.delivery_rate,
                    r.avg_latency,
                    r.p99_latency,
                    r.reroutes,
                    if r.stalled { "YES" } else { "-" },
                    rec.status.label(),
                    rec.attempts
                ),
                None => {
                    // `campaign/<scenario>/<design>/r<rate>` → named columns.
                    let mut parts = rec.key.split('/');
                    let _ = parts.next();
                    let scenario = parts.next().unwrap_or("?");
                    let design = parts.next().unwrap_or("?");
                    println!(
                        "{:<11} {:<20} {:>8} {:>8} {:>7} {:>9} {:>8} {:>8} {:>8} {:>7} {:>10} {:>4}",
                        design,
                        scenario,
                        "-",
                        "-",
                        "-",
                        "-",
                        "-",
                        "-",
                        "-",
                        "-",
                        rec.status.label(),
                        rec.attempts
                    );
                }
            }
        }
    }
    if let Some(path) = args.get("csv-out") {
        std::fs::write(path, report.to_csv()).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("campaign: {} rows written to {path}", report.runner.records.len());
    }
    // The transaction-conservation auditor is a hard gate: any closed-loop
    // cell whose books do not balance fails the whole campaign (exit 1),
    // after the CSV has been written for post-mortem inspection.
    let violations = report.conservation_violations();
    if !violations.is_empty() {
        return Err(format!(
            "transaction-conservation auditor: issued != completed + failed + shed + in_flight \
             in {}",
            violations.join(", ")
        ));
    }
    if cfg.reqreply.is_some() {
        eprintln!("campaign: transaction-conservation auditor clean");
    }
    if let Some(threshold) = args.get("assert-delivery") {
        let threshold: f64 =
            threshold.parse().map_err(|_| format!("invalid --assert-delivery: {threshold}"))?;
        let min = report.min_delivery_rate();
        if min < threshold {
            return Err(format!("delivery rate {min:.4} fell below the required {threshold:.4}"));
        }
        eprintln!("campaign: min delivery rate {min:.4} >= {threshold:.4}");
    }
    let prof = emit_fleet_profile(args, "campaign", sink)?;
    emit_runner(args, "campaign", &report.runner, prof.as_ref())?;
    drop(server);
    Ok(if report.runner.is_clean() { CmdOutcome::Done } else { CmdOutcome::Partial })
}

/// Builds the bench grid spec from the command line: a named preset
/// (`--grid designs|ci`) optionally overridden field by field.
fn bench_spec_from(args: &Args) -> Result<BenchSpec, String> {
    let mut spec = match args.get("grid").unwrap_or("designs") {
        "designs" => BenchSpec::designs_grid(),
        "ci" => BenchSpec::ci_grid(),
        other => return Err(format!("unknown --grid preset: {other} (try designs|ci)")),
    };
    if let Some(designs) = args.get("designs") {
        spec.designs =
            designs.split(',').map(|d| parse_design(d.trim())).collect::<Result<_, _>>()?;
    }
    if let Some(rates) = args.get("rates") {
        spec.rates = rates
            .split(',')
            .map(|r| r.trim().parse().map_err(|_| format!("invalid rate: {r}")))
            .collect::<Result<_, _>>()?;
    }
    spec.seeds = args.get_or("seeds", spec.seeds)?;
    spec.ppn = args.get_or("ppn", spec.ppn)?;
    spec.master_seed = args.get_or("seed", spec.master_seed)?;
    if let Some(rr) = reqreply_from(args)? {
        spec.reqreply = Some(rr);
    }
    Ok(spec)
}

/// `intellinoc bench record` — run the grid and write `BENCH_<name>.json`.
fn bench_record_cmd(args: &Args) -> CmdResult {
    let name = args.get("name").unwrap_or("designs").to_owned();
    let spec = bench_spec_from(args)?;
    let (mut rcfg, chaos) = runner_config_from(args)?;
    let server = attach_fleet_observer(args, "bench", &mut rcfg)?;
    let sink = prof_sink_from(args);
    let units = spec.keys().len();
    eprintln!(
        "bench record: {} designs x {} rates x {} seeds = {units} units",
        spec.designs.len(),
        spec.rates.len(),
        spec.seeds
    );
    let jsink = journeys_dir_from(args)?;
    let baseline = record_bench_instrumented(
        &name,
        &spec,
        &rcfg,
        &chaos,
        sink.as_ref(),
        jsink.as_ref().map(|(d, e)| (d.as_path(), *e)),
    )?;
    if let Some((dir, _)) = &jsink {
        eprintln!("bench record: journey logs collected in {}", dir.display());
    }
    if let Some(prof) = emit_fleet_profile(args, "bench", sink)? {
        match args.get("profile-out") {
            Some(path) => {
                std::fs::write(path, prof.table()).map_err(|e| format!("writing {path}: {e}"))?;
                eprintln!("bench: profile table written to {path}");
            }
            None if args.has_flag("profile") => print!("{}", prof.table()),
            None => {}
        }
    }
    drop(server);
    let out = args.get("out").map(str::to_owned).unwrap_or_else(|| format!("BENCH_{name}.json"));
    std::fs::write(&out, baseline.to_json()?).map_err(|e| format!("writing {out}: {e}"))?;
    eprintln!("bench record: {} cells written to {out}", baseline.cells.len());
    println!(
        "{:<24} {:>12} {:>12} {:>14} {:>12}",
        "cell", "avg_lat", "p99_lat", "energy_pJ/flit", "kcyc/s"
    );
    for c in &baseline.cells {
        println!(
            "{:<24} {:>7.2}±{:<4.2} {:>7.2}±{:<4.2} {:>9.3}±{:<4.3} {:>12.2}",
            c.id(),
            c.avg_latency.mean,
            c.avg_latency.ci95,
            c.p99_latency.mean,
            c.p99_latency.ci95,
            c.energy_per_flit_pj.mean,
            c.energy_per_flit_pj.ci95,
            c.cycles_per_sec.mean / 1e3,
        );
    }
    Ok(CmdOutcome::Done)
}

/// `intellinoc bench compare` — re-run the baseline's grid and gate with
/// the CI-separation rule. Exit 0 pass, 1 error, 2 regression.
fn bench_compare_cmd(args: &Args) -> CmdResult {
    let path = args.get("baseline").ok_or("need --baseline BENCH_<name>.json")?;
    let json = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let baseline = BenchBaseline::from_json(&json)?;
    let (rcfg, chaos) = runner_config_from(args)?;
    eprintln!(
        "bench compare: re-running `{}` ({} units) against {path}",
        baseline.name,
        baseline.spec.keys().len()
    );
    let fresh =
        record_bench_instrumented(&baseline.name, &baseline.spec, &rcfg, &chaos, None, None)?;
    if let Some(out) = args.get("fresh-out") {
        std::fs::write(out, fresh.to_json()?).map_err(|e| format!("writing {out}: {e}"))?;
        eprintln!("bench compare: fresh recording written to {out}");
    }
    let opts = GateOptions {
        gate_throughput: args.has_flag("gate-throughput"),
        force_regress: args.has_flag("force-regress"),
    };
    let cmp = compare_bench(&baseline, &fresh, &opts)?;
    if args.has_flag("json") {
        let s = serde_json::to_string_pretty(&cmp).map_err(|e| e.to_string())?;
        println!("{s}");
    } else {
        print!("{}", cmp.table());
    }
    Ok(if cmp.has_regressions() { CmdOutcome::Partial } else { CmdOutcome::Done })
}

/// `intellinoc bench <record|compare>`.
pub fn bench(args: &Args) -> CmdResult {
    match args.positional.first().map(String::as_str) {
        Some("record") => bench_record_cmd(args),
        Some("compare") => bench_compare_cmd(args),
        _ => Err("usage: intellinoc bench <record|compare> [options]".into()),
    }
}

/// `intellinoc profile` — run a bench grid with span profiling enabled on
/// every unit, merge the per-unit span trees across workers, and report
/// where `step_cycle` spends its time: the deterministic cycle-domain tree,
/// the top-N spans by self wall-clock, and the flamegraph/table artifacts.
pub fn profile(args: &Args) -> CmdResult {
    let spec = bench_spec_from(args)?;
    let (mut rcfg, chaos) = runner_config_from(args)?;
    let server = attach_fleet_observer(args, "profile", &mut rcfg)?;
    let sink = Mutex::new(Profiler::new());
    let keys = spec.keys();
    eprintln!(
        "profile: {} designs x {} rates x {} seeds = {} units",
        spec.designs.len(),
        spec.rates.len(),
        spec.seeds,
        keys.len()
    );
    let report = run_units(spec.master_seed, &keys, &rcfg, &chaos, |ctx: &UnitCtx| {
        let idx = keys.iter().position(|k| k == ctx.key).expect("key from supplied list");
        let (design, rate) = spec.cell_of(idx);
        let mut cfg = ExperimentConfig::new(design, WorkloadSpec::uniform(rate, spec.ppn))
            .with_seed(ctx.seed)
            .with_deadline(ctx.deadline_cycles);
        cfg.telemetry.blackbox = ctx.recorder.clone();
        let budget = cfg.max_cycles;
        let o = run_experiment_profiled(cfg, Some(&sink));
        match classify_timeout(&o.report, budget) {
            Some(timeout) => UnitVerdict::TimedOut { partial: Some(()), report: timeout },
            None => UnitVerdict::Ok(()),
        }
    })?;
    let prof = sink.into_inner().expect("profiler sink lock");
    let tree = prof.span_tree();
    print!("{}", tree.tree_table());
    let top_n = args.get_or("top", 10usize)?;
    println!();
    println!("top {top_n} spans by self wall-clock (nondeterministic):");
    for (path, self_ns, s) in tree.top_self(top_n) {
        println!(
            "  {:<44} {:>12.3} ms {:>10} calls {:>12} flits",
            path,
            self_ns as f64 / 1e6,
            s.calls,
            s.flits
        );
    }
    if let Some(path) = args.get("prof-out") {
        std::fs::write(path, tree.tree_table()).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("profile: cycle-domain span table ({} spans) written to {path}", tree.len());
    }
    if let Some(path) = args.get("flame-out") {
        std::fs::write(path, tree.flamegraph()).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("profile: collapsed-stack flamegraph ({} stacks) written to {path}", tree.len());
    }
    if let Some(path) = args.get("profile-out") {
        std::fs::write(path, prof.table()).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("profile: profile table written to {path}");
    }
    if let Some(path) = args.get("runner-log") {
        let mut events = report.events.clone();
        events.push(RunnerEvent::ProfileNote {
            key: "profile".to_owned(),
            trace_drops: prof.trace_drops().unwrap_or(0),
            span_truncations: tree.truncated_enters(),
            unbalanced_exits: tree.unbalanced_exits(),
            recorder_drops: report.recorder_drops,
        });
        std::fs::write(path, runner_events_jsonl(&events))
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("profile: {} runner events written to {path}", events.len());
    }
    eprintln!("profile: {}", report.summary());
    drop(server);
    Ok(if report.is_clean() { CmdOutcome::Done } else { CmdOutcome::Partial })
}

/// `intellinoc postmortem <bundle.jsonl>` — render a flight-recorder
/// post-mortem bundle as a deterministic markdown report (byte-identical
/// across renders of the same bundle).
pub fn postmortem(args: &Args) -> CmdResult {
    let path = args
        .positional
        .first()
        .ok_or("usage: intellinoc postmortem <bundle.jsonl> [--out report.md]")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let bundle = parse_bundle(&text)?;
    let report = render_report(&bundle);
    match args.get("out") {
        Some(out) => {
            std::fs::write(out, &report).map_err(|e| format!("writing {out}: {e}"))?;
            eprintln!("postmortem: report written to {out}");
        }
        None => print!("{report}"),
    }
    Ok(CmdOutcome::Done)
}

/// `intellinoc journeys <journeys.jsonl>` — analyze a recorded journey log:
/// render the deterministic tail-latency critical-path report (stdout or
/// `--out`), and export the per-(router, cause) tail-contribution CSV and
/// the Perfetto trace-event JSON on request. Byte-identical across renders
/// of the same log.
pub fn journeys(args: &Args) -> CmdResult {
    let path = args.positional.first().ok_or(
        "usage: intellinoc journeys <journeys.jsonl> [--out report.md] \
         [--csv-out contrib.csv] [--perfetto-out trace.json] [--top N]",
    )?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let log = JourneyLog::from_jsonl(&text)?;
    let report = log.tail_report(args.get_or("top", 5usize)?);
    match args.get("out") {
        Some(out) => {
            std::fs::write(out, &report).map_err(|e| format!("writing {out}: {e}"))?;
            eprintln!("journeys: tail report written to {out}");
        }
        None => print!("{report}"),
    }
    if let Some(out) = args.get("csv-out") {
        std::fs::write(out, log.tail_contribution_csv())
            .map_err(|e| format!("writing {out}: {e}"))?;
        eprintln!("journeys: tail-contribution CSV written to {out}");
    }
    if let Some(out) = args.get("perfetto-out") {
        std::fs::write(out, log.perfetto_json()).map_err(|e| format!("writing {out}: {e}"))?;
        eprintln!("journeys: Perfetto trace written to {out}");
    }
    Ok(CmdOutcome::Done)
}

/// `intellinoc area`.
pub fn area() -> CmdResult {
    let model = AreaModel::default();
    println!("{:<12} {:>12} {:>10}", "design", "area um^2", "vs base");
    let base = model.router_area(&Design::Secded.area_spec()).total();
    for d in Design::ALL {
        let total = model.router_area(&d.area_spec()).total();
        println!("{:<12} {:>12.1} {:>9.1}%", d.label(), total, 100.0 * (total / base - 1.0));
    }
    Ok(CmdOutcome::Done)
}

/// `intellinoc list`.
pub fn list() -> CmdResult {
    println!("designs:");
    for d in Design::ALL {
        println!("  {}", d.label().to_ascii_lowercase());
    }
    println!("benchmarks (PARSEC test set + training):");
    for b in ParsecBenchmark::TEST_SET.into_iter().chain([ParsecBenchmark::Blackscholes]) {
        println!("  {} ({})", b.name(), b.label());
    }
    Ok(CmdOutcome::Done)
}

/// `intellinoc serve` — the crash-survivable experiment daemon
/// (DESIGN.md §14), plus the `--chaos N` harness driver that kills real
/// daemon processes at randomized points and asserts lossless recovery.
pub fn serve(args: &Args) -> CmdResult {
    // Harness driver mode: compute the uninterrupted reference in-process,
    // then loop kill/restart iterations against child daemons.
    if let Some(iters) = args.get("chaos") {
        let iterations: u32 =
            iters.parse().map_err(|_| format!("invalid value for --chaos: {iters}"))?;
        let exe = std::env::current_exe().map_err(|e| format!("resolve own binary: {e}"))?;
        let state_root = PathBuf::from(args.get("state-dir").unwrap_or("target/serve-chaos"));
        let mut hcfg = ChaosHarnessConfig::new(exe, state_root);
        hcfg.iterations = iterations;
        hcfg.seed = args.get_or("chaos-seed", hcfg.seed)?;
        hcfg.jobs_per_iteration = args.get_or("chaos-jobs", hcfg.jobs_per_iteration)?;
        let summary = run_chaos_harness(&hcfg)?;
        let killed = summary.iterations.iter().filter(|i| i.killed).count();
        println!(
            "chaos: {} iterations survived ({} kill -9, {} in-process pool panics); \
             all reports byte-identical, no submissions lost",
            summary.iterations.len(),
            killed,
            summary.iterations.len() - killed
        );
        return Ok(CmdOutcome::Done);
    }

    let state_dir = PathBuf::from(args.get("state-dir").ok_or("need --state-dir")?);
    let wal_exists = state_dir.join("wal.jsonl").exists();
    if wal_exists && !args.has_flag("resume") && args.get("chaos-kill").is_none() {
        return Err(format!(
            "state dir {} already has a WAL; pass --resume to recover it",
            state_dir.display()
        ));
    }
    let chaos = match args.get("chaos-kill") {
        Some(s) => Some(Arc::new(ChaosKill::parse(s)?)),
        None => None,
    };
    let cfg = ServeConfig {
        state_dir,
        addr: args.get("addr").unwrap_or("127.0.0.1:9900").to_owned(),
        jobs: args.get_or("jobs", 0usize)?,
        tenant_quota: args.get_or("tenant-quota", intellinoc::DEFAULT_TENANT_QUOTA)?,
        chunk_units: args.get_or("chunk-units", intellinoc::DEFAULT_CHUNK_UNITS)?,
        drain_deadline_ms: args.get_or("drain-deadline-ms", 10_000u64)?,
        alert_rules: match args.get("alert-rules") {
            Some(spec) => parse_rules(spec)?,
            None => Vec::new(),
        },
        chaos,
    };
    let daemon = Daemon::start(cfg)?;
    let addr = daemon.local_addr();
    if let Some(port_file) = args.get("port-file") {
        // tmp + rename so watchers never read a half-written address.
        let tmp = format!("{port_file}.tmp");
        std::fs::write(&tmp, format!("{addr}\n"))
            .and_then(|()| std::fs::rename(&tmp, port_file))
            .map_err(|e| format!("write {port_file}: {e}"))?;
    }
    eprintln!("serve: listening on {addr} (drain with POST /api/drain; kill -9 is recoverable)");
    // Block until a drain completes. Pure std cannot observe SIGTERM, so
    // the drain endpoint is the graceful path and the WAL covers the rest.
    while !daemon.wait_until_drained(std::time::Duration::from_secs(3600)) {}
    Ok(CmdOutcome::Done)
}
