//! Library surface of the `intellinoc` CLI (see `main.rs` for the binary).
//!
//! Exposed as a library so the argument parsing and command plumbing are
//! unit- and integration-testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
