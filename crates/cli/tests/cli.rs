//! Integration tests for the CLI plumbing.

use intellinoc::Design;
use intellinoc_cli::args::Args;
use intellinoc_cli::commands::{parse_benchmark, parse_design, CmdOutcome};
use noc_traffic::ParsecBenchmark;

#[test]
fn design_names_roundtrip() {
    for d in Design::ALL {
        assert_eq!(parse_design(&d.label().to_ascii_lowercase()).unwrap(), d);
    }
    assert_eq!(parse_design("baseline").unwrap(), Design::Secded);
    assert!(parse_design("tpu").is_err());
}

#[test]
fn benchmark_names_and_labels_roundtrip() {
    for b in ParsecBenchmark::TEST_SET {
        assert_eq!(parse_benchmark(b.name()).unwrap(), b);
        assert_eq!(parse_benchmark(b.label()).unwrap(), b);
    }
    assert_eq!(parse_benchmark("blackscholes").unwrap(), ParsecBenchmark::Blackscholes);
    assert!(parse_benchmark("spec2006").is_err());
}

#[test]
fn run_command_executes_end_to_end() {
    let args = Args::parse(
        "run --design eb --rate 0.02 --ppn 5 --seed 3 --json".split_whitespace().map(str::to_owned),
    );
    assert!(intellinoc_cli::commands::run(&args).is_ok());
}

#[test]
fn run_command_rejects_missing_workload() {
    let args = Args::parse("run --design eb".split_whitespace().map(str::to_owned));
    let err = intellinoc_cli::commands::run(&args).unwrap_err();
    assert!(err.contains("--benchmark"), "{err}");
}

#[test]
fn sweep_command_executes() {
    let args = Args::parse(
        "sweep --design secded --rates 0.01,0.02 --ppn 5".split_whitespace().map(str::to_owned),
    );
    assert_eq!(intellinoc_cli::commands::sweep(&args).unwrap(), CmdOutcome::Done);
}

#[test]
fn sweep_accepts_runner_flags_and_rejects_bare_resume() {
    let ok = Args::parse(
        "sweep --design secded --rates 0.01,0.02 --ppn 4 --jobs 2 --max-retries 1"
            .split_whitespace()
            .map(str::to_owned),
    );
    assert_eq!(intellinoc_cli::commands::sweep(&ok).unwrap(), CmdOutcome::Done);

    let bad = Args::parse(
        "sweep --design secded --rates 0.01 --ppn 4 --resume".split_whitespace().map(str::to_owned),
    );
    let err = intellinoc_cli::commands::sweep(&bad).unwrap_err();
    assert!(err.contains("--journal"), "{err}");
}

#[test]
fn campaign_with_chaos_panic_reports_partial_outcome() {
    let args = Args::parse(
        "campaign --rate 0.01 --ppn 4 --seed 3 --dead-links 0 --no-router-fail --flapping 0 \
         --max-cycles 60000 --jobs 2 --force-panic fault-free/EB"
            .split_whitespace()
            .map(str::to_owned),
    );
    assert_eq!(intellinoc_cli::commands::campaign(&args).unwrap(), CmdOutcome::Partial);
}

#[test]
fn area_and_list_always_succeed() {
    assert!(intellinoc_cli::commands::area().is_ok());
    assert!(intellinoc_cli::commands::list().is_ok());
}

#[test]
fn inspect_command_writes_every_artifact() {
    let dir = std::env::temp_dir().join("intellinoc-cli-inspect-test");
    std::fs::create_dir_all(&dir).unwrap();
    let d = dir.to_str().unwrap();
    let args = Args::parse(
        format!(
            "inspect --rate 0.02 --ppn 5 --seed 9 --time-step 200 --report-out {d}/report.md \
             --heatmap-dir {d}/heat --decisions-out {d}/decisions.jsonl \
             --convergence-out {d}/convergence.csv"
        )
        .split_whitespace()
        .map(str::to_owned),
    );
    assert!(intellinoc_cli::commands::inspect(&args).is_ok());
    let report = std::fs::read_to_string(dir.join("report.md")).unwrap();
    assert!(report.contains("## Latency attribution"));
    assert!(report.contains("## RL decisions"));
    let links = std::fs::read_to_string(dir.join("heat/links.csv")).unwrap();
    assert_eq!(links.lines().count(), 113, "header + 112 links");
    for grid in ["router_utilization", "router_retx", "router_gate_residency", "router_temperature"]
    {
        let g = std::fs::read_to_string(dir.join(format!("heat/{grid}.csv"))).unwrap();
        assert_eq!(g.lines().count(), 8, "{grid} is an 8x8 grid");
    }
    let decisions = std::fs::read_to_string(dir.join("decisions.jsonl")).unwrap();
    assert!(decisions.lines().count() >= 64, "at least one decision per router");
    let conv = std::fs::read_to_string(dir.join("convergence.csv")).unwrap();
    assert!(conv.starts_with("cycle,decisions,explorations,updates"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn inspect_on_static_design_skips_rl_sections() {
    let dir = std::env::temp_dir().join("intellinoc-cli-inspect-static");
    std::fs::create_dir_all(&dir).unwrap();
    let d = dir.to_str().unwrap();
    let args = Args::parse(
        format!("inspect --design secded --rate 0.02 --ppn 3 --seed 2 --report-out {d}/r.md")
            .split_whitespace()
            .map(str::to_owned),
    );
    assert!(intellinoc_cli::commands::inspect(&args).is_ok());
    let report = std::fs::read_to_string(dir.join("r.md")).unwrap();
    assert!(report.contains("## Latency attribution"));
    assert!(!report.contains("## RL decisions"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trace_capture_then_replay() {
    let dir = std::env::temp_dir().join("intellinoc-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("t.jsonl");
    let path_s = path.to_str().unwrap().to_owned();
    let cap = Args::parse(
        format!("trace capture {path_s} --rate 0.05 --ppn 3 --seed 4")
            .split_whitespace()
            .map(str::to_owned),
    );
    assert!(intellinoc_cli::commands::trace(&cap).is_ok());
    let rep = Args::parse(
        format!("trace replay {path_s} --design cp").split_whitespace().map(str::to_owned),
    );
    assert!(intellinoc_cli::commands::trace(&rep).is_ok());
    let _ = std::fs::remove_file(path);
}

/// Kills the spawned daemon on drop so a failing test leaves no orphan.
struct KillOnDrop(std::process::Child);

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn spawn_serve(
    state_dir: &std::path::Path,
    port_file: &std::path::Path,
    resume: bool,
) -> KillOnDrop {
    let mut cmd = std::process::Command::new(env!("CARGO_BIN_EXE_intellinoc"));
    cmd.arg("serve")
        .arg("--state-dir")
        .arg(state_dir)
        .arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--port-file")
        .arg(port_file)
        .arg("--chunk-units")
        .arg("1")
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null());
    if resume {
        cmd.arg("--resume");
    }
    KillOnDrop(cmd.spawn().expect("spawn intellinoc serve"))
}

fn wait_port_file(path: &std::path::Path) -> String {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    loop {
        if let Ok(addr) = std::fs::read_to_string(path) {
            let addr = addr.trim().to_owned();
            if !addr.is_empty() {
                return addr;
            }
        }
        assert!(std::time::Instant::now() < deadline, "daemon never wrote {path:?}");
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
}

#[test]
fn serve_survives_kill_nine_and_resumes_to_reference_report() {
    use intellinoc::{http_request, reference_report_csv, JobSpec, JobStatus, SubmitRequest};

    let dir = std::env::temp_dir().join(format!("intellinoc-cli-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let state = dir.join("state");
    let port_file = dir.join("port");

    let spec = JobSpec {
        name: "kill9".to_owned(),
        designs: vec!["secded".to_owned(), "eb".to_owned()],
        rates: vec![0.005, 0.01],
        ppn: 2,
        seed: 7,
        max_cycles: 50_000,
        reqreply: None,
        journeys_every: 0,
    };

    let child = spawn_serve(&state, &port_file, false);
    let addr = wait_port_file(&port_file);
    let body = serde_json::to_string(&SubmitRequest {
        tenant: "alice".to_owned(),
        priority: 0,
        paused: false,
        spec: spec.clone(),
    })
    .unwrap();
    let (code, resp) = http_request(&addr, "POST", "/api/jobs", Some(&body)).unwrap();
    assert_eq!(code, 202, "{resp}");
    let id = serde_json::from_str::<intellinoc::SubmitResponse>(&resp).unwrap().id;

    // Let the job start making progress, then kill -9 mid-flight.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    loop {
        if let Ok((200, body)) = http_request(&addr, "GET", &format!("/api/jobs/{id}"), None) {
            let status: JobStatus = serde_json::from_str(&body).unwrap();
            if status.units_done >= 1 {
                break;
            }
        }
        assert!(std::time::Instant::now() < deadline, "job made no progress");
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    drop(child); // SIGKILL — no destructors, no graceful shutdown

    // Restart over the same state dir: the WAL replays the accepted job
    // and the journal resumes it to a byte-identical report.
    let _ = std::fs::remove_file(&port_file);
    let child = spawn_serve(&state, &port_file, true);
    let addr = wait_port_file(&port_file);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
    loop {
        if let Ok((200, body)) = http_request(&addr, "GET", &format!("/api/jobs/{id}"), None) {
            let status: JobStatus = serde_json::from_str(&body).unwrap();
            if status.state == "done" {
                break;
            }
            assert_ne!(status.state, "failed", "{status:?}");
        }
        assert!(std::time::Instant::now() < deadline, "resumed job never finished");
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    let (code, csv) = http_request(&addr, "GET", &format!("/api/jobs/{id}/report"), None).unwrap();
    assert_eq!(code, 200);
    assert_eq!(csv, reference_report_csv(&spec).unwrap());

    let (code, _) = http_request(&addr, "POST", "/api/drain", None).unwrap();
    assert_eq!(code, 200);
    drop(child);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_chaos_harness_smoke() {
    let dir = std::env::temp_dir().join(format!("intellinoc-cli-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_intellinoc"))
        .args(["serve", "--chaos", "2", "--chaos-seed", "5"])
        .arg("--state-dir")
        .arg(&dir)
        .output()
        .expect("run chaos harness");
    let stderr = String::from_utf8_lossy(&out.stderr);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "chaos harness failed:\n{stdout}\n{stderr}");
    assert!(stdout.contains("iterations survived"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}
