//! Integration tests for the CLI plumbing.

use intellinoc::Design;
use intellinoc_cli::args::Args;
use intellinoc_cli::commands::{parse_benchmark, parse_design};
use noc_traffic::ParsecBenchmark;

#[test]
fn design_names_roundtrip() {
    for d in Design::ALL {
        assert_eq!(parse_design(&d.label().to_ascii_lowercase()).unwrap(), d);
    }
    assert_eq!(parse_design("baseline").unwrap(), Design::Secded);
    assert!(parse_design("tpu").is_err());
}

#[test]
fn benchmark_names_and_labels_roundtrip() {
    for b in ParsecBenchmark::TEST_SET {
        assert_eq!(parse_benchmark(b.name()).unwrap(), b);
        assert_eq!(parse_benchmark(b.label()).unwrap(), b);
    }
    assert_eq!(parse_benchmark("blackscholes").unwrap(), ParsecBenchmark::Blackscholes);
    assert!(parse_benchmark("spec2006").is_err());
}

#[test]
fn run_command_executes_end_to_end() {
    let args = Args::parse(
        "run --design eb --rate 0.02 --ppn 5 --seed 3 --json".split_whitespace().map(str::to_owned),
    );
    assert!(intellinoc_cli::commands::run(&args).is_ok());
}

#[test]
fn run_command_rejects_missing_workload() {
    let args = Args::parse("run --design eb".split_whitespace().map(str::to_owned));
    let err = intellinoc_cli::commands::run(&args).unwrap_err();
    assert!(err.contains("--benchmark"), "{err}");
}

#[test]
fn sweep_command_executes() {
    let args = Args::parse(
        "sweep --design secded --rates 0.01,0.02 --ppn 5".split_whitespace().map(str::to_owned),
    );
    assert!(intellinoc_cli::commands::sweep(&args).is_ok());
}

#[test]
fn area_and_list_always_succeed() {
    assert!(intellinoc_cli::commands::area().is_ok());
    assert!(intellinoc_cli::commands::list().is_ok());
}

#[test]
fn trace_capture_then_replay() {
    let dir = std::env::temp_dir().join("intellinoc-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("t.jsonl");
    let path_s = path.to_str().unwrap().to_owned();
    let cap = Args::parse(
        format!("trace capture {path_s} --rate 0.05 --ppn 3 --seed 4")
            .split_whitespace()
            .map(str::to_owned),
    );
    assert!(intellinoc_cli::commands::trace(&cap).is_ok());
    let rep = Args::parse(
        format!("trace replay {path_s} --design cp").split_whitespace().map(str::to_owned),
    );
    assert!(intellinoc_cli::commands::trace(&rep).is_ok());
    let _ = std::fs::remove_file(path);
}
