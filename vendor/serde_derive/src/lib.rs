//! Derive macros for the vendored `serde` subset.
//!
//! Generates [`serde::Serialize`]/[`serde::Deserialize`] impls that convert
//! through the `serde::Content` tree. Supports non-generic structs (named,
//! tuple, unit) and enums (unit, tuple, and struct variants) with serde's
//! externally-tagged JSON encoding. `#[serde(...)]` attributes and generic
//! parameters are not supported — the workspace does not use them.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`,
//! which are unavailable offline): the input item is walked as token trees
//! and the impl is assembled as a string.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    Named(Vec<String>),
    Unnamed(usize),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kw = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored): generic type `{name}` is not supported");
    }
    match kw.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Unnamed(count_unnamed_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("expected enum body, found {other:?}"),
            };
            Item::Enum { name, variants: parse_variants(body) }
        }
        other => panic!("cannot derive serde traits for `{other}` items"),
    }
}

/// Advances past `#[...]` attributes and `pub`/`pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1; // [...]
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1; // (crate) etc.
                }
            }
            _ => return,
        }
    }
}

/// Advances past one type (or discriminant expression), stopping at a `,`
/// outside any `<...>` nesting. Delimited groups are single token trees, so
/// only angle brackets need explicit depth tracking.
fn skip_to_field_end(tokens: &[TokenTree], i: &mut usize) {
    let mut angle: i32 = 0;
    while let Some(t) = tokens.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else { break };
        fields.push(id.to_string());
        i += 1; // name
        i += 1; // ':'
        skip_to_field_end(&tokens, &mut i);
        i += 1; // ','
    }
    fields
}

fn count_unnamed_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        count += 1;
        skip_to_field_end(&tokens, &mut i);
        i += 1; // ','
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else { break };
        let name = id.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Unnamed(count_unnamed_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Optional `= discriminant`, then the separating comma.
        skip_to_field_end(&tokens, &mut i);
        i += 1;
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => (name, struct_ser_body(name, fields)),
        Item::Enum { name, variants } => (name, enum_ser_body(name, variants)),
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize_content(&self) -> ::serde::Content {{\n{body}\n}}\n\
         }}"
    )
}

fn struct_ser_body(_name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => "::serde::Content::Null".to_owned(),
        Fields::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::serialize_content(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Content::Map(::std::vec![{}])", entries.join(", "))
        }
        Fields::Unnamed(1) => "::serde::Serialize::serialize_content(&self.0)".to_owned(),
        Fields::Unnamed(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize_content(&self.{i})"))
                .collect();
            format!("::serde::Content::Seq(::std::vec![{}])", elems.join(", "))
        }
    }
}

fn enum_ser_body(name: &str, variants: &[Variant]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|v| {
            let vname = &v.name;
            match &v.fields {
                Fields::Unit => format!(
                    "{name}::{vname} => \
                     ::serde::Content::Str(::std::string::String::from(\"{vname}\"))"
                ),
                Fields::Unnamed(n) => {
                    let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                    let inner = if *n == 1 {
                        "::serde::Serialize::serialize_content(f0)".to_owned()
                    } else {
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize_content({b})"))
                            .collect();
                        format!("::serde::Content::Seq(::std::vec![{}])", elems.join(", "))
                    };
                    format!(
                        "{name}::{vname}({}) => ::serde::Content::Map(::std::vec![\
                         (::std::string::String::from(\"{vname}\"), {inner})])",
                        binds.join(", ")
                    )
                }
                Fields::Named(fields) => {
                    let binds = fields.join(", ");
                    let entries: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::serialize_content({f}))"
                            )
                        })
                        .collect();
                    format!(
                        "{name}::{vname} {{ {binds} }} => ::serde::Content::Map(::std::vec![\
                         (::std::string::String::from(\"{vname}\"), \
                          ::serde::Content::Map(::std::vec![{}]))])",
                        entries.join(", ")
                    )
                }
            }
        })
        .collect();
    format!("match self {{ {} }}", arms.join(",\n"))
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => (name, struct_de_body(name, fields)),
        Item::Enum { name, variants } => (name, enum_de_body(name, variants)),
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn deserialize_content(content: &::serde::Content) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}

fn struct_de_body(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => format!("::std::result::Result::Ok({name})"),
        Fields::Named(fields) => {
            let inits: Vec<String> =
                fields.iter().map(|f| format!("{f}: ::serde::field(content, \"{f}\")?")).collect();
            format!("::std::result::Result::Ok({name} {{ {} }})", inits.join(", "))
        }
        Fields::Unnamed(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize_content(content)?))"
        ),
        Fields::Unnamed(n) => {
            let inits: Vec<String> =
                (0..*n).map(|i| format!("::serde::seq_field(content, {i})?")).collect();
            format!("::std::result::Result::Ok({name}({}))", inits.join(", "))
        }
    }
}

fn enum_de_body(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = Vec::new();
    let mut tagged_arms = Vec::new();
    for v in variants {
        let vname = &v.name;
        match &v.fields {
            Fields::Unit => {
                unit_arms
                    .push(format!("\"{vname}\" => ::std::result::Result::Ok({name}::{vname})"));
                // Externally-tagged form `{"Variant": null}` is accepted too.
                tagged_arms
                    .push(format!("\"{vname}\" => ::std::result::Result::Ok({name}::{vname})"));
            }
            Fields::Unnamed(1) => tagged_arms.push(format!(
                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                 ::serde::Deserialize::deserialize_content(value)?))"
            )),
            Fields::Unnamed(n) => {
                let inits: Vec<String> =
                    (0..*n).map(|i| format!("::serde::seq_field(value, {i})?")).collect();
                tagged_arms.push(format!(
                    "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}({}))",
                    inits.join(", ")
                ));
            }
            Fields::Named(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| format!("{f}: ::serde::field(value, \"{f}\")?"))
                    .collect();
                tagged_arms.push(format!(
                    "\"{vname}\" => ::std::result::Result::Ok({name}::{vname} {{ {} }})",
                    inits.join(", ")
                ));
            }
        }
    }
    let unit_match = unit_arms.join(",\n");
    let tagged_match = tagged_arms.join(",\n");
    format!(
        "match content {{\n\
           ::serde::Content::Str(tag) => match tag.as_str() {{\n\
             {unit_match}{}\n\
             other => ::std::result::Result::Err(::serde::Error(\
               ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
           }},\n\
           ::serde::Content::Map(entries) if entries.len() == 1 => {{\n\
             let (tag, value) = &entries[0];\n\
             let _ = value;\n\
             match tag.as_str() {{\n\
               {tagged_match}{}\n\
               other => ::std::result::Result::Err(::serde::Error(\
                 ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
             }}\n\
           }}\n\
           _ => ::std::result::Result::Err(::serde::Error(\
             ::std::string::String::from(\"expected string or single-entry map for {name}\"))),\n\
         }}",
        if unit_arms.is_empty() { "" } else { "," },
        if tagged_arms.is_empty() { "" } else { "," },
    )
}
