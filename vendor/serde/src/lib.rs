//! Offline drop-in subset of `serde` for this workspace.
//!
//! The container image this repository builds in has no crates.io access, so
//! the workspace vendors a minimal serialization framework under the same
//! crate name. Instead of real serde's visitor architecture, types convert
//! to and from a small JSON-shaped [`Content`] tree; the derive macros
//! (re-exported from our `serde_derive`) generate those conversions for
//! plain structs and enums. `serde_json` (also vendored) renders the tree.
//!
//! Supported surface (everything this workspace uses):
//! - `#[derive(Serialize, Deserialize)]` on non-generic structs and enums
//!   without `#[serde(...)]` attributes,
//! - primitives, `String`, `Option`, `Vec`, `VecDeque`, arrays, tuples,
//!   boxed values, and maps with integer/string-like keys,
//! - externally-tagged enum encoding matching real serde's JSON output.
//!
//! Map entries are serialized in sorted key order so serialized output is
//! byte-for-byte deterministic — a property the telemetry determinism tests
//! rely on.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// Serialization/deserialization error: a plain message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Creates an error from any displayable message.
    pub fn msg(m: impl fmt::Display) -> Self {
        Error(m.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// The self-describing data model: a JSON-shaped content tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Content>),
    /// Object (ordered key/value pairs).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// The entries of a map, if this is one.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The elements of a sequence, if this is one.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a map entry by key.
    pub fn get(&self, key: &str) -> Option<&Content> {
        self.as_map()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Numeric view as `f64` (accepts any number representation).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Content::U64(v) => Some(v as f64),
            Content::I64(v) => Some(v as f64),
            Content::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Numeric view as `u64` (accepts integral floats).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Content::U64(v) => Some(v),
            Content::I64(v) => u64::try_from(v).ok(),
            Content::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            _ => None,
        }
    }

    /// Numeric view as `i64` (accepts integral floats).
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Content::U64(v) => i64::try_from(v).ok(),
            Content::I64(v) => Some(v),
            Content::F64(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => Some(v as i64),
            _ => None,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) | Content::I64(_) | Content::F64(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "array",
            Content::Map(_) => "object",
        }
    }
}

/// A value that can be rendered into a [`Content`] tree.
pub trait Serialize {
    /// Converts `self` into the data model.
    fn serialize_content(&self) -> Content;
}

/// A value that can be rebuilt from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds a value from the data model.
    ///
    /// # Errors
    ///
    /// Returns an error when the content shape does not match `Self`.
    fn deserialize_content(content: &Content) -> Result<Self, Error>;
}

/// Helper used by derived code: extract and deserialize a struct field.
///
/// # Errors
///
/// Returns an error when the field is missing or has the wrong shape.
pub fn field<T: Deserialize>(content: &Content, name: &str) -> Result<T, Error> {
    let v = content
        .get(name)
        .ok_or_else(|| Error(format!("missing field `{name}` in {}", content.kind())))?;
    T::deserialize_content(v).map_err(|e| Error(format!("field `{name}`: {e}")))
}

/// Helper used by derived code: extract and deserialize a tuple element.
///
/// # Errors
///
/// Returns an error when the element is missing or has the wrong shape.
pub fn seq_field<T: Deserialize>(content: &Content, idx: usize) -> Result<T, Error> {
    let seq = content
        .as_seq()
        .ok_or_else(|| Error(format!("expected array, found {}", content.kind())))?;
    let v = seq.get(idx).ok_or_else(|| Error(format!("missing tuple element {idx}")))?;
    T::deserialize_content(v).map_err(|e| Error(format!("element {idx}: {e}")))
}

fn type_error<T>(expected: &str, found: &Content) -> Result<T, Error> {
    Err(Error(format!("expected {expected}, found {}", found.kind())))
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_content(c: &Content) -> Result<Self, Error> {
                let v = c.as_u64().ok_or_else(|| {
                    Error(format!("expected unsigned integer, found {}", c.kind()))
                })?;
                <$t>::try_from(v).map_err(|_| Error(format!("{v} out of range")))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 { Content::U64(v as u64) } else { Content::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn deserialize_content(c: &Content) -> Result<Self, Error> {
                let v = c.as_i64().ok_or_else(|| {
                    Error(format!("expected integer, found {}", c.kind()))
                })?;
                <$t>::try_from(v).map_err(|_| Error(format!("{v} out of range")))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn serialize_content(&self) -> Content {
        // JSON numbers cannot hold u128 precisely; encode as a string.
        if let Ok(v) = u64::try_from(*self) {
            Content::U64(v)
        } else {
            Content::Str(self.to_string())
        }
    }
}
impl Deserialize for u128 {
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        if let Some(v) = c.as_u64() {
            return Ok(v as u128);
        }
        match c {
            Content::Str(s) => s.parse().map_err(|_| Error(format!("bad u128 `{s}`"))),
            other => type_error("u128", other),
        }
    }
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                Content::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_content(c: &Content) -> Result<Self, Error> {
                c.as_f64().map(|v| v as $t).ok_or_else(|| {
                    Error(format!("expected number, found {}", c.kind()))
                })
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn serialize_content(&self) -> Content {
        Content::Bool(*self)
    }
}
impl Deserialize for bool {
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => type_error("bool", other),
        }
    }
}

impl Serialize for char {
    fn serialize_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("non-empty")),
            other => type_error("single-char string", other),
        }
    }
}

impl Serialize for String {
    fn serialize_content(&self) -> Content {
        Content::Str(self.clone())
    }
}
impl Deserialize for String {
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => type_error("string", other),
        }
    }
}

impl Serialize for str {
    fn serialize_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for () {
    fn serialize_content(&self) -> Content {
        Content::Null
    }
}
impl Deserialize for () {
    fn deserialize_content(_: &Content) -> Result<Self, Error> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_content(&self) -> Content {
        (**self).serialize_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_content(&self) -> Content {
        (**self).serialize_content()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        T::deserialize_content(c).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.serialize_content(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Null => Ok(None),
            other => T::deserialize_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Seq(s) => s.iter().map(T::deserialize_content).collect(),
            other => type_error("array", other),
        }
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}
impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        Vec::<T>::deserialize_content(c).map(VecDeque::from)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        let v = Vec::<T>::deserialize_content(c)?;
        let len = v.len();
        v.try_into().map_err(|_| Error(format!("expected array of {N}, found {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.serialize_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_content(c: &Content) -> Result<Self, Error> {
                Ok(($(seq_field::<$name>(c, $idx)?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

// Map keys: rendered through the content tree, then stringified. Integer and
// string keys round-trip; anything else is a serialization error surfaced at
// JSON-rendering time (mirroring serde_json's key restrictions).
fn key_to_string(c: Content) -> String {
    match c {
        Content::Str(s) => s,
        Content::U64(v) => v.to_string(),
        Content::I64(v) => v.to_string(),
        Content::Bool(b) => b.to_string(),
        other => format!("<unsupported key: {}>", other.kind()),
    }
}

fn key_from_string<K: Deserialize>(s: &str) -> Result<K, Error> {
    // Try the numeric readings first so integer-keyed maps round-trip, then
    // fall back to the plain string.
    if let Ok(v) = s.parse::<u64>() {
        if let Ok(k) = K::deserialize_content(&Content::U64(v)) {
            return Ok(k);
        }
    }
    if let Ok(v) = s.parse::<i64>() {
        if let Ok(k) = K::deserialize_content(&Content::I64(v)) {
            return Ok(k);
        }
    }
    K::deserialize_content(&Content::Str(s.to_owned()))
}

fn serialize_map<'a, K, V, I>(entries: I) -> Content
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    let mut out: Vec<(String, Content)> = entries
        .map(|(k, v)| (key_to_string(k.serialize_content()), v.serialize_content()))
        .collect();
    // Sorted key order keeps serialized maps deterministic regardless of the
    // source container's iteration order.
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Content::Map(out)
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize_content(&self) -> Content {
        serialize_map(self.iter())
    }
}
impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Map(m) => m
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::deserialize_content(v)?)))
                .collect(),
            other => type_error("object", other),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_content(&self) -> Content {
        serialize_map(self.iter())
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Map(m) => m
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::deserialize_content(v)?)))
                .collect(),
            other => type_error("object", other),
        }
    }
}

impl Serialize for Content {
    fn serialize_content(&self) -> Content {
        self.clone()
    }
}
impl Deserialize for Content {
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        Ok(c.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::deserialize_content(&42u64.serialize_content()).unwrap(), 42);
        assert_eq!(i32::deserialize_content(&(-7i32).serialize_content()).unwrap(), -7);
        assert_eq!(f64::deserialize_content(&1.5f64.serialize_content()).unwrap(), 1.5);
        assert!(bool::deserialize_content(&Content::Bool(true)).unwrap());
    }

    #[test]
    fn f64_accepts_integer_content() {
        assert_eq!(f64::deserialize_content(&Content::U64(3)).unwrap(), 3.0);
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::deserialize_content(&v.serialize_content()).unwrap(), v);
        let a = [1.0f64, 2.0];
        assert_eq!(<[f64; 2]>::deserialize_content(&a.serialize_content()).unwrap(), a);
        let o: Option<u32> = None;
        assert_eq!(Option::<u32>::deserialize_content(&o.serialize_content()).unwrap(), None);
    }

    #[test]
    fn hashmap_serializes_sorted() {
        let mut m = HashMap::new();
        m.insert(10u64, 1u32);
        m.insert(2u64, 2u32);
        let c = m.serialize_content();
        let keys: Vec<&str> = c.as_map().unwrap().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["10", "2"]); // lexicographic, but stable
        let back = HashMap::<u64, u32>::deserialize_content(&c).unwrap();
        assert_eq!(back, m);
    }
}
