//! Offline subset of `rand` for this workspace.
//!
//! Provides [`rngs::SmallRng`] — xoshiro256++ seeded through SplitMix64,
//! the same generator real `rand 0.8` uses for `SmallRng` on 64-bit targets,
//! so `next_u64` streams match the real crate — plus the [`Rng`] methods the
//! workspace calls: `gen::<f64>()`, `gen::<u128>()`, and `gen_range` over
//! half-open and inclusive integer ranges (rejection-sampled, bias-free).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of generators from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`
    /// (`f64` in `[0, 1)`, integers uniform over their full range).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range; panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — matches real `rand 0.8`'s 64-bit `SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as used by rand_core's default
            // `seed_from_u64`.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types samplable from the standard distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits scaled into [0, 1) — rand's convention.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u32
    }
}

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let hi = rng.next_u64() as u128;
        let lo = rng.next_u64() as u128;
        (hi << 64) | lo
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform, bias-free draw of a value in `[0, span)` via rejection sampling.
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Largest prefix of [0, 2^64) that is an exact multiple of `span`.
    let zone = u64::MAX - (u64::MAX % span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + sample_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    // Full-width u64/i64 ranges: every draw is in range.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + sample_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(1..=2usize);
            assert!((1..=2).contains(&w));
            let f = rng.gen_range(-1.0..1.0f64);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn small_range_hits_all_values() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
