//! Offline subset of `proptest` for this workspace.
//!
//! Implements the strategy combinators and runner macros the workspace's
//! property tests use: range/tuple/`Just`/`prop_oneof!`/`prop_map`/
//! `collection::vec`/`any` strategies, `prop_assert*`/`prop_assume!`, and the
//! `proptest!` macro with optional `#![proptest_config(...)]`. Unlike real
//! proptest there is no shrinking: a failing case reports its deterministic
//! seed instead. Case generation is seeded from the test name, so runs are
//! reproducible without a persistence file.

#![forbid(unsafe_code)]

pub mod strategy {
    //! Value-generation strategies.

    use rand::{Rng, SeedableRng};
    use std::ops::Range;

    /// Deterministic RNG driving all strategies.
    pub type TestRng = rand::rngs::SmallRng;

    pub(crate) fn rng_for(name: &str, stream: u64) -> TestRng {
        // FNV-1a over the test name, mixed with the case stream index.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::seed_from_u64(h ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// A generator of test values.
    pub trait Strategy {
        /// The type of value produced.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            (**self).sample(rng)
        }
    }

    /// Boxes a strategy (used by `prop_oneof!`).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// Builds a union; panics if `options` is empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty float range");
                    let unit = rng.gen::<f64>();
                    let lo = self.start as f64;
                    let hi = self.end as f64;
                    (lo + unit * (hi - lo)) as $t
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }
}

pub mod arbitrary {
    //! `any::<T>()` for types with a canonical full-range strategy.

    use super::strategy::{Strategy, TestRng};
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen::<u64>() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen::<u128>()
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen::<u64>() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    pub struct AnyStrategy<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for AnyStrategy<A> {
        type Value = A;
        fn sample(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// The full-range strategy for `A`.
    pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Element-count specification for [`vec`]: exact or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_exclusive: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_exclusive: r.end }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.lo + 1 == self.size.hi_exclusive {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi_exclusive)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Vectors of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod test_runner {
    //! Case execution: config, error type, and the retry/reject loop.

    use super::strategy::{rng_for, TestRng};

    /// Runner configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
        /// Cap on `prop_assume!` rejections across the whole run.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` successful cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases, ..ProptestConfig::default() }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; the cycle-accurate sims these
            // tests drive are expensive, so the offline runner keeps a
            // smaller default (overridable via PROPTEST_CASES).
            let cases =
                std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(32);
            ProptestConfig { cases, max_global_rejects: 4096 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// Assertion failure with message.
        Fail(String),
        /// `prop_assume!` rejection; the case is discarded and redrawn.
        Reject,
    }

    /// Executes `f` until `config.cases` cases pass.
    ///
    /// # Panics
    ///
    /// Panics on the first failing case (reporting its seed stream index)
    /// or when the global rejection budget is exhausted.
    pub fn run<F>(config: &ProptestConfig, name: &str, mut f: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let mut passed = 0u32;
        let mut rejects = 0u32;
        let mut stream = 0u64;
        while passed < config.cases {
            let mut rng = rng_for(name, stream);
            match f(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => {
                    rejects += 1;
                    assert!(
                        rejects <= config.max_global_rejects,
                        "proptest `{name}`: too many prop_assume! rejections \
                         ({rejects}) — strategy too narrow"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest `{name}` failed at case {passed} \
                         (seed stream {stream}): {msg}"
                    );
                }
            }
            stream += 1;
        }
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            $crate::test_runner::run(&config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), __rng);)+
                $body
                ::std::result::Result::Ok(())
            });
        }
    )*};
}

/// Fallible assertion; fails the current case (with optional format args).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Fallible equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left,
                    right
                ),
            ));
        }
    }};
}

/// Fallible inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `{} != {}` (both {:?})",
                    stringify!($left),
                    stringify!($right),
                    left
                ),
            ));
        }
    }};
}

/// Discards the current case unless `cond` holds; a fresh case is drawn.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies yielding a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::boxed($strategy)),+
        ])
    };
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn assume_filters(a in 0u32..10, b in 0u32..10) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }

        #[test]
        fn vec_sizes(v in prop::collection::vec(0u32..5, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn oneof_and_map(
            v in prop_oneof![Just(1u32), Just(2), Just(3)],
            w in (0u32..4).prop_map(|x| x * 2),
        ) {
            prop_assert!((1..=3).contains(&v));
            prop_assert_eq!(w % 2, 0);
        }

        #[test]
        fn tuples_and_any(t in (0u64..5, 0.0f32..1.0), x in any::<u128>()) {
            prop_assert!(t.0 < 5);
            prop_assert!((0.0..1.0).contains(&t.1));
            let _ = x;
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::{rng_for, Strategy};
        let s = crate::collection::vec(0u64..1000, 5usize);
        let a = s.sample(&mut rng_for("det", 0));
        let b = s.sample(&mut rng_for("det", 0));
        assert_eq!(a, b);
    }
}
