//! Offline subset of `criterion` for this workspace.
//!
//! Implements the harness surface the `noc-bench` targets use — benchmark
//! groups, `bench_function`, `Bencher::iter`/`iter_batched`, `black_box`,
//! and the `criterion_group!`/`criterion_main!` macros — with plain
//! `Instant`-based timing instead of real criterion's statistical engine.
//! Each benchmark reports median and mean ns/iteration over a configurable
//! number of samples.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of the standard optimizer barrier.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How `iter_batched` amortizes setup cost across routine calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Many routine calls per setup (cheap inputs).
    SmallInput,
    /// Few routine calls per setup (expensive inputs).
    LargeInput,
    /// One routine call per setup.
    PerIteration,
}

/// Top-level harness handle passed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size: 60 }
    }
}

/// A named set of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher { elapsed: Duration::ZERO, iters: 0 };
            f(&mut b);
            if b.iters > 0 {
                samples.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
            }
        }
        report(&self.name, &id, &mut samples);
        self
    }

    /// Ends the group (provided for API compatibility; drop also suffices).
    pub fn finish(self) {}
}

fn report(group: &str, id: &str, samples: &mut [f64]) {
    if samples.is_empty() {
        println!("{group}/{id}: no samples");
        return;
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{group}/{id}: median {median:.1} ns/iter, mean {mean:.1} ns/iter \
         ({} samples)",
        samples.len()
    );
}

/// Per-sample measurement handle.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Calibrate an iteration count targeting ~2 ms per sample.
        let probe = Instant::now();
        black_box(routine());
        let once = probe.elapsed().max(Duration::from_nanos(20));
        let iters = (2_000_000 / once.as_nanos().max(1)).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += iters;
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup cost.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let batches = match size {
            BatchSize::SmallInput => 8,
            BatchSize::LargeInput => 2,
            BatchSize::PerIteration => 1,
        };
        for _ in 0..batches {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters += 1;
        }
    }
}

/// Bundles benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.sample_size(3);
        let mut count = 0u64;
        g.bench_function("incr", |b| b.iter(|| count = count.wrapping_add(1)));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
        assert!(count > 0);
    }
}
