//! Offline subset of `serde_json` over the vendored serde [`Content`] tree.
//!
//! Provides the five entry points this workspace uses — [`to_string`],
//! [`to_string_pretty`], [`to_vec`], [`from_str`], [`from_slice`] — with
//! output conventions matching real serde_json: externally-tagged enums,
//! two-space pretty indentation, and non-finite floats rendered as `null`.
//! Because the vendored serde serializes maps in sorted key order, rendered
//! JSON is byte-for-byte deterministic for identical inputs.

#![forbid(unsafe_code)]

use serde::{Content, Deserialize, Serialize};
use std::fmt::Write as _;

/// JSON error (serialization never fails; parsing reports position).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Convenience alias matching real serde_json.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Never fails for the supported data model; the `Result` mirrors real
/// serde_json's signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&mut out, &value.serialize_content(), None, 0);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Never fails for the supported data model.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&mut out, &value.serialize_content(), Some(2), 0);
    Ok(out)
}

/// Serializes a value to compact JSON bytes.
///
/// # Errors
///
/// Never fails for the supported data model.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes a value from a JSON string.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let content = Parser::new(s).parse_document()?;
    T::deserialize_content(&content).map_err(Error::from)
}

/// Deserializes a value from JSON bytes.
///
/// # Errors
///
/// Returns an error on invalid UTF-8, malformed JSON, or a shape mismatch.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_content(out: &mut String, c: &Content, indent: Option<usize>, depth: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Content::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Content::F64(v) => write_f64(out, *v),
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => write_block(out, indent, depth, '[', ']', items.len(), |out, i| {
            write_content(out, &items[i], indent, depth + 1);
        }),
        Content::Map(entries) => {
            write_block(out, indent, depth, '{', '}', entries.len(), |out, i| {
                let (k, v) = &entries[i];
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(out, v, indent, depth + 1);
            });
        }
    }
}

fn write_block(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..(width * (depth + 1)) {
                out.push(' ');
            }
        }
        write_item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * depth) {
            out.push(' ');
        }
    }
    out.push(close);
}

fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        // Matches serde_json: non-finite floats render as null.
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        // Keep a trailing ".0" so integral floats stay recognizably floats.
        let _ = write!(out, "{v:.1}");
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser { bytes: s.as_bytes(), pos: 0 }
    }

    fn parse_document(mut self) -> Result<Content> {
        let value = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters"));
        }
        Ok(value)
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content> {
        match self.peek().ok_or_else(|| self.err("unexpected end of input"))? {
            b'n' => {
                if self.eat_literal("null") {
                    Ok(Content::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            b't' => {
                if self.eat_literal("true") {
                    Ok(Content::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            b'f' => {
                if self.eat_literal("false") {
                    Ok(Content::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            b'"' => self.parse_string().map(Content::Str),
            b'[' => self.parse_array(),
            b'{' => self.parse_object(),
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => Err(self.err(&format!("unexpected character `{}`", other as char))),
        }
    }

    fn parse_array(&mut self) -> Result<Content> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            if self.peek() != Some(b'"') {
                return Err(self.err("expected object key"));
            }
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            // The input is valid UTF-8 and `"`/`\` are ASCII, so this slice
            // falls on character boundaries.
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.parse_escape(&mut out)?;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_escape(&mut self, out: &mut String) -> Result<()> {
        let b = *self.bytes.get(self.pos).ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        match b {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'b' => out.push('\u{08}'),
            b'f' => out.push('\u{0c}'),
            b'u' => {
                let first = self.parse_hex4()?;
                let code = if (0xD800..0xDC00).contains(&first) {
                    // High surrogate: require a following `\uXXXX` low half.
                    if !self.eat_literal("\\u") {
                        return Err(self.err("unpaired surrogate"));
                    }
                    let second = self.parse_hex4()?;
                    if !(0xDC00..0xE000).contains(&second) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                } else {
                    first
                };
                out.push(char::from_u32(code).ok_or_else(|| self.err("invalid codepoint"))?);
            }
            _ => return Err(self.err("invalid escape")),
        }
        Ok(())
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(hex).map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
        }
        text.parse::<f64>().map(Content::F64).map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_roundtrip() {
        let v = vec![1u64, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>(&s).unwrap(), v);
    }

    #[test]
    fn pretty_matches_serde_json_style() {
        let v = vec![1u64];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1\n]");
    }

    #[test]
    fn floats_and_specials() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
        assert_eq!(from_str::<f64>("3").unwrap(), 3.0);
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = "line\n\"quoted\"\\µ";
        let json = to_string(&s.to_owned()).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(from_str::<String>("\"\\u00b5\"").unwrap(), "µ");
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
    }

    #[test]
    fn rejects_malformed() {
        assert!(from_str::<Vec<u64>>("[1,2").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<String>("\"abc").is_err());
    }
}
